#!/usr/bin/env python
"""Whole-repo lock-order and lock-discipline analysis for MetaSQL.

The serving stack is deeply concurrent: worker threads, per-tenant
epoch/refcount shard guards, breaker boards, the SLO engine, the flight
recorder ring and the ops endpoint all share state under ~a dozen
``threading.Lock``/``RLock``/``Condition`` sites.  ``repolint`` enforces
*lexical* invariants (no callbacks under ``with self._lock``); this tool
goes further with an AST-based **interprocedural** pass over the whole
source tree:

1. **Inventory** — every lock object (``self._x = threading.Lock()`` or
   the :mod:`repro.devtools.lockdep` factory idiom
   ``self._x = new_lock("Cls._x")``) gets a stable identity
   ``ClassName.attr``; every ``with``/``.acquire()`` site that takes it
   is recorded.
2. **Lock-order graph** — calls made while a lock is held are resolved
   through a module-level call graph (``self`` methods, base classes,
   attribute types inferred from constructor assignments and
   annotations, module functions, annotated return types for chained
   calls) and every lock the callee may take becomes a *held-before*
   edge.
3. **Diagnostics** (stable ``CCnnn`` codes):

   ``CC001`` lock-order-cycle
       A cycle in the global held-before graph: two call paths take the
       same locks in opposite orders — a potential deadlock.
   ``CC002`` blocking-under-lock
       A known-blocking operation (queue ``get``/``put``, ``wait`` on a
       *different* condition, ``sleep``, ``join``, ``Future.result``,
       file/socket I/O, ``open``, ``os.fsync``/``os.replace``, a
       journal append) is reachable while a lock is held — the dataflow
       generalization of repolint's lexical ``lock-callback`` rule.
       Waiting on the condition you hold is the designed use of
       ``Condition`` (the wait releases it) and is exempt.
   ``CC003`` double-acquire
       A non-reentrant ``Lock`` re-acquired on a ``self``-only call
       chain while already held: guaranteed self-deadlock.
   ``CC004`` callback-under-lock
       An observer callback (``self.on_*`` / ``self._notify``) invoked
       — directly or through helpers — while a lock is held.  The repo
       idiom is queue-under-lock, flush-outside.
   ``CC005`` lock-name-mismatch
       The name literal passed to ``new_lock``/``new_rlock``/
       ``new_condition`` does not match the owning ``Class.attr``, so
       runtime lockdep witnesses would carry a misleading identity.
   ``CC006`` stale-pragma
       (``--strict-pragmas``) a ``# locklint: allow[...]`` pragma that
       no longer suppresses anything.

Suppressing a finding
---------------------
Put ``# locklint: allow[CC002]`` (comma-separated codes allowed) on the
offending line or the line directly above it, with a justification::

    with self._lock:  # locklint: allow[CC002] — append IS the fsync point

Usage
-----
::

    python tools/locklint.py src/ [more paths...] [--format text|json]
    python tools/locklint.py src/ --inventory
    python tools/locklint.py src/ --strict-pragmas
    python tools/locklint.py --list

Exit status is 1 when any finding is reported, 0 when clean.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from dataclasses import dataclass, field

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repolint import (  # noqa: E402  (path bootstrap above)
    Finding,
    iter_python_files,
    parse_pragmas,
)

#: code -> one-line description (the ``--list`` output).
CODES: dict[str, str] = {
    "CC001": "lock-order cycle across call paths (potential deadlock)",
    "CC002": "known-blocking call reachable while a lock is held",
    "CC003": "non-reentrant Lock re-acquired on a self call chain",
    "CC004": "observer callback invoked while a lock is held",
    "CC005": "lockdep name literal does not match the owning Class.attr",
    "CC006": "stale '# locklint: allow[...]' pragma (--strict-pragmas)",
}

#: Lock factory call names -> lock kind.  Covers both raw ``threading``
#: constructors and the :mod:`repro.devtools.lockdep` seam factories.
_LOCK_FACTORIES: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "new_lock": "lock",
    "new_rlock": "rlock",
    "new_condition": "condition",
}

#: Dotted-call names that always block (module-level functions).
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "time.sleep",
    "os.fsync": "os.fsync",
    "os.fdatasync": "os.fdatasync",
    "os.replace": "os.replace",
    "os.rename": "os.rename",
    "open": "open (file I/O)",
    "socket.create_connection": "socket I/O",
}

#: Method names that block regardless of receiver type.
_BLOCKING_ATTRS: dict[str, str] = {
    "result": "Future.result",
    "recv": "socket recv",
    "send": "socket send",
    "sendall": "socket sendall",
    "accept": "socket accept",
    "connect": "socket connect",
    "sleep": "sleep",  # injectable self._sleep idiom
}

#: queue.Queue methods that block unless told not to.
_QUEUE_BLOCKING = {"get", "put"}


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lock_factory_kind(node: ast.AST) -> str | None:
    """The lock kind constructed by *node*, or None.

    Looks through conditional expressions so idioms like
    ``threading.Lock() if flag else other`` still register.
    """
    if isinstance(node, ast.IfExp):
        return _lock_factory_kind(node.body) or _lock_factory_kind(
            node.orelse
        )
    if not isinstance(node, ast.Call):
        return None
    name = _dotted(node.func) or (
        node.func.id if isinstance(node.func, ast.Name) else None
    )
    if name is None:
        return None
    if name in _LOCK_FACTORIES:
        return _LOCK_FACTORIES[name]
    # `lockdep.new_lock(...)`-style qualified seam calls.
    tail = name.rsplit(".", 1)[-1]
    return _LOCK_FACTORIES.get(tail) if tail.startswith("new_") else None


def _lock_name_literal(node: ast.AST) -> str | None:
    """The name literal passed to a seam factory call, if any."""
    if isinstance(node, ast.IfExp):
        return _lock_name_literal(node.body) or _lock_name_literal(
            node.orelse
        )
    if (
        isinstance(node, ast.Call)
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        name = _dotted(node.func) or (
            node.func.id if isinstance(node.func, ast.Name) else ""
        )
        if name.rsplit(".", 1)[-1].startswith("new_"):
            return node.args[0].value
    return None


def _annotation_names(node: ast.AST | None) -> set[str]:
    """Bare class names mentioned in an annotation (handles unions,
    subscripts, and string annotations like ``"MetaSQL | Router"``)."""
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names - {"None", "Optional", "Union", "str", "int", "float",
                    "bool", "dict", "list", "tuple", "set", "object"}


# ----------------------------------------------------------------------
# Per-function event model.


@dataclass
class _Acquire:
    """A ``with <lock>:`` region (or bare ``.acquire()`` tail)."""

    lock_id: str
    kind: str
    line: int
    body: list = field(default_factory=list)


@dataclass
class _CallSite:
    """A call whose effects must be resolved interprocedurally."""

    receiver: str | None  # "self" | attr name on self | None (module fn)
    chain: tuple[str, ...]  # method chain, e.g. ("registry", "counter")
    line: int
    via_self: bool  # the entire receiver chain stays on `self`


@dataclass
class _Blocking:
    desc: str
    line: int


@dataclass
class _Wait:
    """``.wait()``/``.wait_for()`` on a known condition attribute."""

    lock_id: str
    line: int


@dataclass
class _Callback:
    name: str
    line: int


@dataclass
class _FuncInfo:
    qualname: str  # "Class.method" or "function"
    cls: "_ClassInfo | None"
    path: str
    events: list = field(default_factory=list)
    # Fixpoint summaries: value is (witness line, call chain tuple).
    acquired: dict[str, tuple] = field(default_factory=dict)
    acquired_kinds: dict[str, str] = field(default_factory=dict)
    acquired_self: set[str] = field(default_factory=set)
    blocking: dict[str, tuple] = field(default_factory=dict)
    callbacks: dict[str, tuple] = field(default_factory=dict)


@dataclass
class _ClassInfo:
    name: str
    module: str
    path: str
    bases: list[str] = field(default_factory=list)
    #: lock attr -> (lock_id, kind, line, name_literal|None)
    locks: dict[str, tuple] = field(default_factory=dict)
    #: attr -> candidate type names (class names or "queue.Queue")
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    methods: dict[str, _FuncInfo] = field(default_factory=dict)
    #: method -> return-annotation class-name candidates
    returns: dict[str, set[str]] = field(default_factory=dict)


@dataclass
class _LockSite:
    lock_id: str
    kind: str
    path: str
    line: int
    func: str


# ----------------------------------------------------------------------
# Phase 1: parse every module into classes/functions/events.


class _ModuleCollector(ast.NodeVisitor):
    """Collect classes, lock declarations, attr types, and functions.

    Runs in two phases over every module so that declarations (class
    names, lock attributes, attribute types) from *any* file are visible
    before *any* function body is analyzed:

    - phase ``"decls"`` registers classes, scans ``self.x = ...``
      assignments for lock declarations and attribute types, and records
      method return annotations;
    - phase ``"events"`` builds the per-function event trees, which may
      reference locks and types declared anywhere in the universe.
    """

    def __init__(
        self, path: str, module: str, universe: "_Universe", phase: str
    ):
        self.path = path
        self.module = module
        self.universe = universe
        self.phase = phase

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.phase == "decls":
            info = _ClassInfo(
                name=node.name,
                module=self.module,
                path=self.path,
                bases=[
                    base.id
                    if isinstance(base, ast.Name)
                    else (
                        base.attr
                        if isinstance(base, ast.Attribute)
                        else ""
                    )
                    for base in node.bases
                ],
            )
            self.universe.add_class(info)
        else:
            info = self.universe.get_class(node.name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self.phase == "decls":
                    self._scan_self_assignments(info, item)
                    if item.returns is not None:
                        info.returns[item.name] = _annotation_names(
                            item.returns
                        )
                elif info is not None:
                    func = self._collect_function(info, item)
                    info.methods.setdefault(item.name, func)
        # Nested classes are rare here; walk them independently.
        for item in node.body:
            if isinstance(item, ast.ClassDef):
                self.visit_ClassDef(item)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self.phase == "events":
            self._collect_function(None, node)

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- helpers --------------------------------------------------------

    def _collect_function(self, cls, node) -> _FuncInfo:
        qual = f"{cls.name}.{node.name}" if cls else node.name
        func = _FuncInfo(qualname=qual, cls=cls, path=self.path)
        annotations = _param_annotations(node)
        func.events = _EventBuilder(
            cls, annotations, self.universe
        ).build(node.body)
        self.universe.add_function(self.module, func, node.name)
        return func

    def _scan_self_assignments(self, cls: _ClassInfo, node) -> None:
        annotations = _param_annotations(node)
        for child in ast.walk(node):
            target, value, ann = None, None, None
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target, value = child.targets[0], child.value
            elif isinstance(child, ast.AnnAssign):
                target, value, ann = child.target, child.value, child.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            kind = _lock_factory_kind(value) if value is not None else None
            if kind is not None:
                literal = _lock_name_literal(value)
                lock_id = literal or f"{cls.name}.{attr}"
                cls.locks[attr] = (lock_id, kind, child.lineno, literal)
                continue
            types = set(_annotation_names(ann))
            if value is not None:
                types |= self._value_types(value, annotations)
            if types:
                cls.attr_types.setdefault(attr, set()).update(types)

    def _value_types(self, value: ast.AST, annotations: dict) -> set[str]:
        """Candidate type names for an assigned expression."""
        if isinstance(value, ast.IfExp):
            return self._value_types(value.body, annotations) | (
                self._value_types(value.orelse, annotations)
            )
        if isinstance(value, ast.Call):
            name = _dotted(value.func) or (
                value.func.id if isinstance(value.func, ast.Name) else None
            )
            if name is None:
                return set()
            if name in ("queue.Queue", "Queue"):
                return {"queue.Queue"}
            simple = name.rsplit(".", 1)[-1]
            if self.universe.has_class(simple):
                return {simple}
            returns = self.universe.function_returns(simple)
            if returns:
                return set(returns)
            return set()
        if isinstance(value, ast.Name):
            return set(annotations.get(value.id, set()))
        return set()


def _param_annotations(node) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names = _annotation_names(arg.annotation)
        if names:
            out[arg.arg] = names
    return out


class _EventBuilder:
    """Turn one function body into the nested event tree."""

    def __init__(self, cls, annotations, universe):
        self.cls = cls
        self.annotations = annotations
        self.universe = universe

    def build(self, body: list) -> list:
        events: list = []
        for stmt in body:
            self._stmt(stmt, events)
        return events

    # -- statement walk (preserves with-nesting, skips nested defs) ----

    def _stmt(self, stmt: ast.AST, out: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # runs later, outside any currently-held lock
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, out)
            return
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                self._stmt(node, out)
            else:
                self._expr(node, out)

    def _with(self, stmt, out: list) -> None:
        locks: list[tuple[str, str, int]] = []
        for item in stmt.items:
            lock = self._lock_attr(item.context_expr)
            if lock is not None:
                locks.append((lock[0], lock[1], stmt.lineno))
            else:
                self._expr(item.context_expr, out)
        inner = out
        for lock_id, kind, line in locks:
            acquire = _Acquire(lock_id=lock_id, kind=kind, line=line)
            inner.append(acquire)
            inner = acquire.body
        for sub in stmt.body:
            self._stmt(sub, inner)

    # -- expression walk ------------------------------------------------

    def _expr(self, node: ast.AST, out: list) -> None:
        for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
            self._call(call, out)

    def _lock_attr(self, node: ast.AST) -> tuple[str, str] | None:
        """(lock_id, kind) when *node* is a known ``self.<lock>`` attr."""
        if (
            self.cls is not None
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            decl = self._lookup_lock(node.attr)
            if decl is not None:
                return decl[0], decl[1]
        return None

    def _lookup_lock(self, attr: str):
        cls = self.cls
        seen = set()
        while cls is not None and cls.name not in seen:
            seen.add(cls.name)
            if attr in cls.locks:
                return cls.locks[attr]
            cls = next(
                (
                    self.universe.get_class(base)
                    for base in cls.bases
                    if self.universe.has_class(base)
                ),
                None,
            )
        return None

    def _call(self, call: ast.Call, out: list) -> None:
        func = call.func
        dotted = _dotted(func)
        line = call.lineno
        # Direct module-level blocking calls.
        if dotted in _BLOCKING_CALLS:
            out.append(_Blocking(_BLOCKING_CALLS[dotted], line))
            return
        if isinstance(func, ast.Name):
            if func.id == "open":
                out.append(_Blocking(_BLOCKING_CALLS["open"], line))
                return
            out.append(
                _CallSite(receiver=None, chain=(func.id,), line=line,
                          via_self=False)
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if "fsync" in attr:
            out.append(_Blocking(f"{attr} (fsync helper)", line))
            return
        # Callback idiom: self.on_*() / self._notify().
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and (attr.startswith("on_") or attr == "_notify")
        ):
            out.append(_Callback(attr, line))
            return
        # Condition wait / generic wait.
        if attr in ("wait", "wait_for"):
            lock = self._lock_attr(func.value)
            if lock is not None and lock[1] == "condition":
                out.append(_Wait(lock[0], line))
            else:
                out.append(_Blocking(f".{attr}()", line))
            return
        if attr == "join" and not call.args:
            out.append(_Blocking("join", line))
            return
        if attr in _BLOCKING_ATTRS and attr != "sleep":
            out.append(_Blocking(_BLOCKING_ATTRS[attr], line))
            return
        if attr == "sleep":
            out.append(_Blocking("sleep", line))
            return
        # Queue get/put resolved by receiver type.
        receiver_chain = self._receiver_chain(func.value)
        if attr in _QUEUE_BLOCKING and receiver_chain is not None:
            rtype = self._receiver_types(receiver_chain)
            if "queue.Queue" in rtype and not _nonblocking_queue_call(call):
                out.append(_Blocking(f"queue.Queue.{attr}", line))
                return
        if receiver_chain is None:
            return  # unresolvable receiver (locals, subscripts, ...)
        head, *rest = receiver_chain
        if head != "self":
            return  # only self-rooted chains resolve to known objects
        out.append(
            _CallSite(
                receiver="self" if not rest else rest[0],
                chain=tuple(rest) + (attr,),
                line=line,
                via_self=not rest,
            )
        )

    def _receiver_chain(self, node: ast.AST) -> list[str] | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        return None

    def _receiver_types(self, chain: list[str]) -> set[str]:
        if self.cls is None or chain[0] != "self" or len(chain) != 2:
            return set()
        return self.cls.attr_types.get(chain[1], set())


def _nonblocking_queue_call(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "block" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
        if kw.arg == "timeout":
            return True
    return False


# ----------------------------------------------------------------------
# Phase 2: the analysis universe + interprocedural fixpoint.


class _Universe:
    """Every class and function across the analyzed paths."""

    def __init__(self) -> None:
        self.classes: dict[str, _ClassInfo] = {}
        self.known_classes: set[str] = set()  # names seen in the pre-pass
        self.functions: dict[str, _FuncInfo] = {}  # simple name -> info
        self.all_funcs: list[_FuncInfo] = []
        self._returns: dict[str, set[str]] = {}

    def add_class(self, info: _ClassInfo) -> None:
        self.classes.setdefault(info.name, info)

    def note_class_name(self, name: str) -> None:
        self.known_classes.add(name)

    def has_class(self, name: str) -> bool:
        return name in self.classes or name in self.known_classes

    def get_class(self, name: str) -> _ClassInfo | None:
        return self.classes.get(name)

    def add_function(self, module: str, func: _FuncInfo, name: str) -> None:
        self.all_funcs.append(func)
        if func.cls is None:
            self.functions.setdefault(name, func)

    def function_returns(self, name: str) -> set[str]:
        return self._returns.get(name, set())

    def note_function_returns(self, name: str, types: set[str]) -> None:
        if types:
            self._returns.setdefault(name, set()).update(types)

    # -- method resolution ---------------------------------------------

    def resolve_method(
        self, cls: _ClassInfo | None, name: str
    ) -> _FuncInfo | None:
        seen: set[str] = set()
        while cls is not None and cls.name not in seen:
            seen.add(cls.name)
            if name in cls.methods:
                return cls.methods[name]
            cls = next(
                (
                    self.classes[base]
                    for base in cls.bases
                    if base in self.classes
                ),
                None,
            )
        return None

    def method_returns(self, cls: _ClassInfo | None, name: str) -> set[str]:
        seen: set[str] = set()
        while cls is not None and cls.name not in seen:
            seen.add(cls.name)
            if name in cls.returns:
                return cls.returns[name]
            cls = next(
                (
                    self.classes[base]
                    for base in cls.bases
                    if base in self.classes
                ),
                None,
            )
        return set()

    def resolve_call(self, func: _FuncInfo, site: _CallSite):
        """Target functions a call site may reach (possibly several)."""
        targets: list[tuple[_FuncInfo, bool]] = []
        if site.receiver is None:
            target = self.functions.get(site.chain[0])
            if target is not None:
                targets.append((target, False))
            return targets
        if site.via_self:
            target = self.resolve_method(func.cls, site.chain[-1])
            if target is not None:
                targets.append((target, True))
            return targets
        # self.attr.m1().m2()... — walk the chain through attr types and
        # return annotations.
        if func.cls is None:
            return targets
        current: set[str] = set(
            func.cls.attr_types.get(site.chain[0], set())
        )
        for step in site.chain[1:-1]:
            nxt: set[str] = set()
            for cls_name in current:
                cls = self.classes.get(cls_name)
                if cls is None:
                    continue
                nxt |= self.method_returns(cls, step)
            current = nxt
        for cls_name in current:
            cls = self.classes.get(cls_name)
            if cls is None:
                continue
            target = self.resolve_method(cls, site.chain[-1])
            if target is not None:
                targets.append((target, False))
        return targets


def _summarize(universe: _Universe) -> None:
    """Fixpoint over function summaries (sets only grow -> terminates)."""
    changed = True
    while changed:
        changed = False
        for func in universe.all_funcs:
            if _fold_events(universe, func, func.events, chain=()):
                changed = True


def _fold_events(universe, func: _FuncInfo, events, chain) -> bool:
    changed = False
    for event in events:
        if isinstance(event, _Acquire):
            if event.lock_id not in func.acquired:
                func.acquired[event.lock_id] = (event.line, chain)
                func.acquired_kinds[event.lock_id] = event.kind
                func.acquired_self.add(event.lock_id)
                changed = True
            if _fold_events(universe, func, event.body, chain):
                changed = True
        elif isinstance(event, _Blocking):
            if event.desc not in func.blocking:
                func.blocking[event.desc] = (event.line, chain)
                changed = True
        elif isinstance(event, _Wait):
            desc = f"wait on {event.lock_id}"
            if desc not in func.blocking:
                func.blocking[desc] = (event.line, chain)
                changed = True
        elif isinstance(event, _Callback):
            if event.name not in func.callbacks:
                func.callbacks[event.name] = (event.line, chain)
                changed = True
        elif isinstance(event, _CallSite):
            for target, via_self in universe.resolve_call(func, event):
                step = (target.qualname,)
                for lock_id, (line, sub) in target.acquired.items():
                    if lock_id not in func.acquired:
                        func.acquired[lock_id] = (event.line, step + sub)
                        func.acquired_kinds[lock_id] = (
                            target.acquired_kinds[lock_id]
                        )
                        changed = True
                    if (
                        via_self
                        and lock_id in target.acquired_self
                        and lock_id not in func.acquired_self
                    ):
                        func.acquired_self.add(lock_id)
                        changed = True
                for desc, (line, sub) in target.blocking.items():
                    if desc not in func.blocking:
                        func.blocking[desc] = (event.line, step + sub)
                        changed = True
                for name, (line, sub) in target.callbacks.items():
                    if name not in func.callbacks:
                        func.callbacks[name] = (event.line, step + sub)
                        changed = True
    return changed


# ----------------------------------------------------------------------
# Phase 3: findings.


@dataclass
class _Edge:
    src: str
    dst: str
    path: str
    line: int
    func: str
    chain: tuple


class _Analyzer:
    """Whole-repo analysis: build, summarize, then emit findings."""

    def __init__(self) -> None:
        self.universe = _Universe()
        self.sites: list[_LockSite] = []
        self.findings: list[Finding] = []
        self.edges: dict[tuple[str, str], _Edge] = {}
        self._seen: set[tuple[str, str, int]] = set()

    # -- loading --------------------------------------------------------

    def load_paths(self, paths: list[str]) -> None:
        parsed = []
        for file in iter_python_files(paths):
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
            parsed.append((str(file), file.stem, tree))
        self._load_parsed(parsed)

    def load_source(self, source: str, path: str = "<string>") -> None:
        tree = ast.parse(source, filename=path)
        self._load_parsed([(path, pathlib.Path(path).stem, tree)])

    def _load_parsed(self, parsed: list) -> None:
        # Pre-pass: class names and module-function return annotations
        # must be visible before any declaration scan (attr type
        # inference, e.g. `self.registry = get_registry()` with
        # `def get_registry() -> MetricsRegistry`).
        for _path, _module, tree in parsed:
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    self.universe.note_class_name(node.name)
                elif (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.returns is not None
                ):
                    self.universe.note_function_returns(
                        node.name, _annotation_names(node.returns)
                    )
        for phase in ("decls", "events"):
            for path, module, tree in parsed:
                _ModuleCollector(path, module, self.universe, phase).visit(
                    tree
                )

    # -- analysis -------------------------------------------------------

    def analyze(self) -> list[Finding]:
        _summarize(self.universe)
        for func in self.universe.all_funcs:
            self._walk(func, func.events, held=[])
        self._find_cycles()
        self._check_lock_names()
        return self.findings

    def _report(self, code: str, path: str, line: int, message: str):
        key = (code, path, line)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(rule=code, path=path, line=line, message=message)
        )

    def _walk(self, func: _FuncInfo, events, held: list) -> None:
        for event in events:
            if isinstance(event, _Acquire):
                self.sites.append(
                    _LockSite(
                        lock_id=event.lock_id,
                        kind=event.kind,
                        path=func.path,
                        line=event.line,
                        func=func.qualname,
                    )
                )
                for held_id, held_kind, held_line in held:
                    if held_id == event.lock_id:
                        if held_kind == "lock":
                            self._report(
                                "CC003",
                                func.path,
                                event.line,
                                f"non-reentrant Lock {event.lock_id!r} "
                                f"re-acquired while already held in "
                                f"{func.qualname} (self-deadlock)",
                            )
                        continue
                    self._note_edge(
                        held_id, event.lock_id, func, event.line, ()
                    )
                self._walk(
                    func,
                    event.body,
                    held + [(event.lock_id, event.kind, event.line)],
                )
            elif isinstance(event, _Blocking):
                if held:
                    self._blocking_finding(
                        func, held, event.desc, event.line, ()
                    )
            elif isinstance(event, _Wait):
                others = [h for h in held if h[0] != event.lock_id]
                if others:
                    self._blocking_finding(
                        func,
                        others,
                        f"Condition.wait on {event.lock_id} while other "
                        "locks are held",
                        event.line,
                        (),
                    )
            elif isinstance(event, _Callback):
                if held:
                    self._report(
                        "CC004",
                        func.path,
                        event.line,
                        f"callback self.{event.name}() invoked under "
                        f"{held[-1][0]} in {func.qualname}; queue the "
                        "event and flush after releasing the lock",
                    )
            elif isinstance(event, _CallSite) and held:
                self._apply_call_summary(func, event, held)

    def _apply_call_summary(self, func, event: _CallSite, held) -> None:
        for target, via_self in self.universe.resolve_call(func, event):
            chain = (target.qualname,)
            held_ids = {h[0] for h in held}
            for lock_id, (line, sub) in target.acquired.items():
                if lock_id in held_ids:
                    kind = target.acquired_kinds.get(lock_id)
                    if (
                        kind == "lock"
                        and via_self
                        and lock_id in target.acquired_self
                    ):
                        self._report(
                            "CC003",
                            func.path,
                            event.line,
                            f"non-reentrant Lock {lock_id!r} re-acquired "
                            f"via {' -> '.join(chain + sub) or chain[0]} "
                            f"while held in {func.qualname} "
                            "(self-deadlock)",
                        )
                    continue
                for held_id, _kind, _line in held:
                    self._note_edge(
                        held_id, lock_id, func, event.line, chain + sub
                    )
            for desc, (line, sub) in target.blocking.items():
                if desc.startswith("wait on "):
                    waited = desc[len("wait on "):]
                    others = [h for h in held if h[0] != waited]
                    if not others:
                        continue
                    self._blocking_finding(
                        func, others, desc, event.line, chain + sub
                    )
                    continue
                self._blocking_finding(
                    func, held, desc, event.line, chain + sub
                )
            for name, (line, sub) in target.callbacks.items():
                self._report(
                    "CC004",
                    func.path,
                    event.line,
                    f"callback {name}() reachable under {held[-1][0]} "
                    f"via {' -> '.join(chain + sub) or chain[0]} "
                    f"in {func.qualname}",
                )

    def _blocking_finding(self, func, held, desc, line, chain) -> None:
        via = f" via {' -> '.join(chain)}" if chain else ""
        self._report(
            "CC002",
            func.path,
            line,
            f"blocking {desc} while holding {held[-1][0]}{via} in "
            f"{func.qualname}; release the lock before blocking",
        )

    def _note_edge(self, src, dst, func, line, chain) -> None:
        key = (src, dst)
        if key not in self.edges:
            self.edges[key] = _Edge(
                src=src,
                dst=dst,
                path=func.path,
                line=line,
                func=func.qualname,
                chain=chain,
            )

    # -- cycles ---------------------------------------------------------

    def _find_cycles(self) -> None:
        graph: dict[str, set[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            cycle = sorted(component)
            witness_edges = [
                self.edges[key]
                for key in sorted(self.edges)
                if key[0] in component and key[1] in component
            ]
            anchor = witness_edges[0]
            sites = "; ".join(
                f"{e.src} -> {e.dst} at {e.path}:{e.line} ({e.func})"
                for e in witness_edges[:4]
            )
            self._report(
                "CC001",
                anchor.path,
                anchor.line,
                f"lock-order cycle between {', '.join(cycle)}: {sites}",
            )

    # -- lockdep name hygiene ------------------------------------------

    def _check_lock_names(self) -> None:
        for cls in self.universe.classes.values():
            for attr, (lock_id, kind, line, literal) in cls.locks.items():
                if literal is None:
                    continue
                expected = f"{cls.name}.{attr}"
                if literal != expected:
                    self._report(
                        "CC005",
                        cls.path,
                        line,
                        f"lockdep name {literal!r} does not match its "
                        f"owning attribute {expected!r}; runtime "
                        "witnesses would carry a misleading identity",
                    )

    # -- inventory ------------------------------------------------------

    def inventory(self) -> dict:
        locks: dict[str, dict] = {}
        for cls in sorted(
            self.universe.classes.values(), key=lambda c: c.name
        ):
            for attr, (lock_id, kind, line, literal) in sorted(
                cls.locks.items()
            ):
                locks[lock_id] = {
                    "kind": kind,
                    "declared": f"{cls.path}:{line}",
                    "sites": [],
                }
        for site in sorted(
            self.sites, key=lambda s: (s.lock_id, s.path, s.line)
        ):
            entry = locks.setdefault(
                site.lock_id,
                {"kind": site.kind, "declared": None, "sites": []},
            )
            entry["sites"].append(
                f"{site.path}:{site.line} ({site.func})"
            )
        return {
            "locks": locks,
            "edges": [
                {
                    "held": edge.src,
                    "then": edge.dst,
                    "site": f"{edge.path}:{edge.line}",
                    "func": edge.func,
                    "via": list(edge.chain),
                }
                for _key, edge in sorted(self.edges.items())
            ],
        }


def _tarjan_sccs(graph: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components (iterative Tarjan)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


# ----------------------------------------------------------------------
# Public entry points (mirroring repolint's API shape).


def _apply_pragmas(
    findings: list[Finding],
    pragmas_by_path: dict[str, dict[int, set[str]]],
    strict: bool,
) -> list[Finding]:
    kept: list[Finding] = []
    used: dict[tuple[str, int, str], bool] = {}
    for path, allowed in pragmas_by_path.items():
        for line, codes in allowed.items():
            for code in codes:
                used[(path, line, code)] = False
    for finding in findings:
        allowed = pragmas_by_path.get(finding.path, {})
        suppressed = False
        for line in (finding.line, finding.line - 1):
            if finding.rule in allowed.get(line, set()):
                used[(finding.path, line, finding.rule)] = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    if strict:
        for (path, line, code), was_used in sorted(used.items()):
            if was_used:
                continue
            if code not in CODES:
                kept.append(
                    Finding(
                        rule="CC006",
                        path=path,
                        line=line,
                        message=(
                            f"pragma allows unknown locklint code "
                            f"{code!r}"
                        ),
                    )
                )
            else:
                kept.append(
                    Finding(
                        rule="CC006",
                        path=path,
                        line=line,
                        message=(
                            f"stale pragma: allow[{code}] suppresses "
                            "nothing on this line; remove it"
                        ),
                    )
                )
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule))


def lint_paths(
    paths: list[str], strict_pragmas: bool = False
) -> list[Finding]:
    """Analyze every ``.py`` file under *paths* as one universe."""
    analyzer = _Analyzer()
    analyzer.load_paths(paths)
    findings = analyzer.analyze()
    pragmas_by_path = {
        str(file): parse_pragmas(
            file.read_text(encoding="utf-8"), tool="locklint"
        )
        for file in iter_python_files(paths)
    }
    return _apply_pragmas(findings, pragmas_by_path, strict_pragmas)


def lint_source(
    source: str, path: str = "<string>", strict_pragmas: bool = False
) -> list[Finding]:
    """Analyze one module's source text (unit-test entry point)."""
    analyzer = _Analyzer()
    analyzer.load_source(source, path)
    findings = analyzer.analyze()
    pragmas = {path: parse_pragmas(source, tool="locklint")}
    return _apply_pragmas(findings, pragmas, strict_pragmas)


def build_inventory(paths: list[str]) -> dict:
    """The lock inventory + held-before edges for *paths* (JSON-ready)."""
    analyzer = _Analyzer()
    analyzer.load_paths(paths)
    analyzer.analyze()
    return analyzer.inventory()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="locklint", description=__doc__.splitlines()[0]
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--list", action="store_true", help="list diagnostic codes"
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="print the lock inventory and held-before edges as JSON",
    )
    parser.add_argument(
        "--strict-pragmas",
        action="store_true",
        help="flag allow[...] pragmas that no longer suppress anything",
    )
    args = parser.parse_args(argv)

    if args.list:
        for code, summary in sorted(CODES.items()):
            print(f"{code:8s} {summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list)")

    if args.inventory:
        print(json.dumps(build_inventory(args.paths), indent=2))
        return 0

    findings = lint_paths(args.paths, strict_pragmas=args.strict_pragmas)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
