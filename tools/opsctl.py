#!/usr/bin/env python
"""Operator console for a running (or crashed) MetaSQL service.

Three subcommands over the PR-8 operational-intelligence layer:

``poll``
    GET an ops endpoint (``/slo`` by default) one or more times and
    print each response — the smallest possible liveness/SLO watch::

        python tools/opsctl.py poll --url http://127.0.0.1:9100
        python tools/opsctl.py poll --url ... --endpoint /metrics
        python tools/opsctl.py poll --url ... --endpoint /readyz --tenant acme

``render``
    Turn a debug bundle written by ``FlightRecorder.dump_bundle()`` /
    ``TranslationService.dump_bundle()`` into a human-readable incident
    report: capture reasons, the dominant failing stage, firing SLOs,
    readiness, and the slowest captured requests::

        python tools/opsctl.py render bundle.json

``tail``
    Follow a live request journal (``iter_journal(follow=True)``),
    printing one line per event — bounded by ``--timeout`` and/or
    ``--max-records`` so a watch always terminates::

        python tools/opsctl.py tail events.jsonl --timeout 30

The module is importable (``render_bundle`` is used by tests and can be
reused by other tooling); only :func:`main` touches stdout.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import time
import urllib.error
import urllib.parse
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # pragma: no cover — direct-script convenience
    sys.path.insert(0, str(SRC))

from repro.obs.journal import iter_journal  # noqa: E402
from repro.obs.recorder import load_bundle  # noqa: E402


# ----------------------------------------------------------------------
# poll


def fetch(url: str, timeout: float = 5.0) -> tuple[int, str]:
    """GET *url*; returns ``(status, body)`` (non-2xx is not an error)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def poll(
    url: str,
    endpoint: str = "/slo",
    count: int = 1,
    interval: float = 1.0,
    tenant: str | None = None,
    sleep=time.sleep,
    out=None,
) -> int:
    """Poll one endpoint *count* times; exit 0 iff every poll got a 2xx."""
    out = out if out is not None else sys.stdout
    target = url.rstrip("/") + endpoint
    if tenant is not None:
        joiner = "&" if "?" in endpoint else "?"
        target += f"{joiner}tenant={urllib.parse.quote(tenant)}"
    worst = 0
    for index in range(count):
        if index:
            sleep(interval)
        try:
            status, body = fetch(target)
        except OSError as exc:
            print(f"[{index + 1}/{count}] {target} unreachable: {exc}",
                  file=out)
            worst = 1
            continue
        print(f"[{index + 1}/{count}] {target} -> {status}", file=out)
        print(body.rstrip("\n"), file=out)
        if not 200 <= status < 300:
            worst = 1
    return worst


# ----------------------------------------------------------------------
# render


def _failing_stages(entries: list[dict]) -> dict[str, int]:
    """Fault counts per stage across the captured entries.

    Prefers the full report's fault records (they carry error types);
    falls back to the summary record's fault list.
    """
    stages: dict[str, int] = {}
    for entry in entries:
        faults = entry.get("report", {}).get("faults") or entry.get(
            "record", {}
        ).get("faults", [])
        for fault in faults:
            if isinstance(fault, dict):
                stage = str(fault.get("stage", "unknown"))
                stages[stage] = stages.get(stage, 0) + 1
    return stages


def _bucket_bound(bound: str) -> float:
    return math.inf if bound == "+Inf" else float(bound)


def _histogram_quantile(series: list[dict], quantile: float) -> float:
    """Quantile upper-bound from merged histogram bucket snapshots."""
    merged: dict[str, float] = {}
    for entry in series:
        for bound, cumulative in (entry.get("buckets") or {}).items():
            merged[bound] = merged.get(bound, 0) + cumulative
    total = sum(entry.get("count") or 0 for entry in series)
    target = quantile * total
    for bound in sorted(merged, key=_bucket_bound):
        if merged[bound] >= target:
            return _bucket_bound(bound)
    return math.inf


def _batch_occupancy(metrics: dict) -> list[str]:
    """Micro-batcher occupancy lines from a bundle's metrics snapshot.

    Reads the ``metasql_serve_batch_size`` histogram (mean + p90 bucket
    bound) and the ``metasql_serve_batch_flush_total`` reason counters;
    silent when the service never batched (pre-batching bundles render
    unchanged).
    """
    family = metrics.get("metasql_serve_batch_size") or {}
    series = family.get("series") or []
    batches = sum(entry.get("count") or 0 for entry in series)
    if not batches:
        return []
    requests = sum(entry.get("sum") or 0.0 for entry in series)
    p90 = _histogram_quantile(series, 0.9)
    lines = [
        f"  batch occupancy: mean {requests / batches:.1f}, "
        f"p90<={p90:g} ({batches} batches, {requests:.0f} requests)"
    ]
    reasons: dict[str, float] = {}
    flushes = metrics.get("metasql_serve_batch_flush_total") or {}
    for entry in flushes.get("series") or []:
        reason = str((entry.get("labels") or {}).get("reason", "?"))
        reasons[reason] = reasons.get(reason, 0) + (entry.get("value") or 0)
    if reasons:
        lines.append(
            "  batch flush reasons: "
            + ", ".join(
                f"{reason}={int(count)}"
                for reason, count in sorted(
                    reasons.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
        )
    return lines


def render_bundle(bundle: dict) -> str:
    """A human-readable incident report for one debug bundle."""
    lines = ["MetaSQL incident report"]
    recorder = bundle.get("recorder", {})
    entries = bundle.get("entries", [])
    lines.append(
        f"  bundle v{bundle.get('version', '?')}, "
        f"{recorder.get('entries', len(entries))} captured entries "
        f"(capacity {recorder.get('capacity', '?')}, "
        f"evicted {recorder.get('evicted', 0)})"
    )
    health = bundle.get("health") or {}
    if health:
        tenants = health.get("tenants") or {}
        lines.append(
            f"  health: ready={health.get('ready')} "
            f"accepting={health.get('accepting')} "
            f"queue={health.get('queue_depth')}/"
            f"{health.get('queue_capacity')} "
            f"degraded_rate={health.get('degraded_rate')}"
        )
        open_tenants = sorted(
            tenant
            for tenant, section in tenants.items()
            if section.get("breaker_open")
        )
        if open_tenants:
            lines.append(
                "  tenants with open breakers: " + ", ".join(open_tenants)
            )
    lines.extend(_batch_occupancy(bundle.get("metrics") or {}))
    firing = [
        status
        for status in bundle.get("slo") or []
        if status.get("firing")
    ]
    if firing:
        lines.append("  firing SLOs:")
        for status in firing:
            label = status.get("slo", "?")
            if status.get("tenant"):
                label += f"[{status['tenant']}]"
            # ``alerts`` is the SloStatus severity -> latched mapping.
            severities = ",".join(
                sorted(
                    severity
                    for severity, latched in (
                        status.get("alerts") or {}
                    ).items()
                    if latched
                )
            )
            lines.append(
                f"    {label}: compliance={status.get('compliance')} "
                f"severity={severities or '?'}"
            )
    else:
        lines.append("  firing SLOs: none")
    reasons: dict[str, int] = {}
    for entry in entries:
        reason = str(entry.get("reason", "unknown"))
        reasons[reason] = reasons.get(reason, 0) + 1
    if reasons:
        lines.append(
            "  capture reasons: "
            + ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(
                    reasons.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
        )
    stages = _failing_stages(entries)
    if stages:
        ranked = sorted(stages.items(), key=lambda kv: (-kv[1], kv[0]))
        top_stage, top_count = ranked[0]
        lines.append(
            f"  dominant failing stage: {top_stage} "
            f"({top_count} faults across captured requests)"
        )
        if len(ranked) > 1:
            lines.append(
                "  other faulting stages: "
                + ", ".join(f"{stage}={count}" for stage, count in ranked[1:])
            )
    else:
        lines.append("  dominant failing stage: none (no captured faults)")
    slowest = sorted(
        (
            entry
            for entry in entries
            if isinstance(
                entry.get("record", {}).get("latency_s"), (int, float)
            )
        ),
        key=lambda entry: entry["record"]["latency_s"],
        reverse=True,
    )[:3]
    if slowest:
        lines.append("  slowest captured requests:")
        for entry in slowest:
            record = entry["record"]
            lines.append(
                f"    {record['latency_s'] * 1e3:8.2f} ms "
                f"reason={entry.get('reason')} "
                f"tenant={record.get('tenant', '?')} "
                f"q={str(record.get('question', ''))[:48]!r}"
            )
    return "\n".join(lines)


def render(path: str | pathlib.Path, out=None) -> int:
    out = out if out is not None else sys.stdout
    try:
        bundle = load_bundle(path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read bundle {path}: {exc}", file=out)
        return 1
    print(render_bundle(bundle), file=out)
    return 0


# ----------------------------------------------------------------------
# tail


def tail(
    path: str | pathlib.Path,
    timeout: float | None = None,
    max_records: int | None = None,
    poll_interval: float = 0.2,
    out=None,
) -> int:
    out = out if out is not None else sys.stdout
    if timeout is None and max_records is None:
        timeout = 10.0  # a watch must terminate
    for record in iter_journal(
        path,
        follow=True,
        poll_interval=poll_interval,
        timeout=timeout,
        max_records=max_records,
    ):
        print(json.dumps(record, sort_keys=True), file=out)
    return 0


# ----------------------------------------------------------------------
# CLI


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="opsctl", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_poll = sub.add_parser("poll", help="GET an ops endpoint")
    p_poll.add_argument("--url", required=True, help="base ops URL")
    p_poll.add_argument("--endpoint", default="/slo")
    p_poll.add_argument("--count", type=int, default=1)
    p_poll.add_argument("--interval", type=float, default=1.0)
    p_poll.add_argument("--tenant", default=None)

    p_render = sub.add_parser("render", help="render a debug bundle")
    p_render.add_argument("bundle", help="path to a dump_bundle() JSON")

    p_tail = sub.add_parser("tail", help="follow a live journal")
    p_tail.add_argument("journal", help="path to a JSONL journal")
    p_tail.add_argument("--timeout", type=float, default=None)
    p_tail.add_argument("--max-records", type=int, default=None)
    p_tail.add_argument("--poll-interval", type=float, default=0.2)

    args = parser.parse_args(argv)
    if args.command == "poll":
        return poll(
            args.url,
            endpoint=args.endpoint,
            count=args.count,
            interval=args.interval,
            tenant=args.tenant,
        )
    if args.command == "render":
        return render(args.bundle)
    return tail(
        args.journal,
        timeout=args.timeout,
        max_records=args.max_records,
        poll_interval=args.poll_interval,
    )


if __name__ == "__main__":
    raise SystemExit(main())
