#!/usr/bin/env python
"""Repo-invariant self-lint for the MetaSQL reproduction codebase.

The PR-1..3 layers (resilience, serving, observability) rely on a handful
of coding invariants that plain style checkers cannot see.  This tool
walks Python sources with :mod:`ast` and enforces them:

``wall-clock``
    No direct calls to ``time.time()`` / ``datetime.now()`` /
    ``datetime.utcnow()``.  Every timestamp must flow through an
    injectable clock (the ``clock=`` constructor idiom) so tests can run
    deterministically.  *References* without a call — e.g.
    ``clock or time.time`` as a default — are fine.

``broad-except``
    ``except Exception`` / ``except BaseException`` / bare ``except``
    must carry an explicit pragma.  Fault isolation is deliberate in this
    repo, so broad handlers are allowed — but only when annotated with a
    justification the linter can see.

``lock-callback``
    No invocation of observer callbacks (``self.on_*`` attributes or
    ``self._notify``) lexically inside a ``with self._lock:`` body.
    Observers run arbitrary user code; calling them under the lock risks
    deadlock (``threading.Lock`` is not reentrant) and lock-hold blowup.
    The repo idiom is queue-under-lock, flush-outside (see
    ``CircuitBreaker._notify``).

``contextvar-reset``
    A ``token = <var>.set(...)`` assignment must be paired with a
    ``.reset(token)`` inside a ``finally`` block of the same function, so
    ambient state (tracer, registry, deadline, budget) never leaks across
    translations.  Only names ending in ``token`` are treated as
    ContextVar tokens.

``fsync-rename``
    A function that calls ``os.rename`` / ``os.replace`` (the atomic
    promote step of a persist path) must also call ``os.fsync`` — or a
    helper whose name contains ``fsync`` — so the renamed content is
    durable before the pointer flips.

``unseeded-random``
    No unseeded randomness: ``random.<fn>()`` module-level calls,
    zero-argument ``random.Random()``, zero-argument
    ``np.random.default_rng()``, and legacy ``np.random.<fn>`` globals
    are all flagged.  Every RNG must be seeded or injected so runs are
    reproducible.

``metric-catalog``
    Opt-in (``--metrics-doc DESIGN.md``): every ``metasql_*`` metric
    name passed literally to a registry factory
    (``.counter``/``.gauge``/``.histogram``) in the linted sources must
    appear in the given catalog doc(s) — a new metric that skips the
    catalog is silent metric drift for operators.

``event-catalog``
    Opt-in (``--events-doc DESIGN.md``): every journal event name — the
    literal string value of an ``"event"`` key in a dict literal — must
    appear in the given catalog doc(s).  Journal consumers (the replay
    analyzer, ops dashboards) key on these strings; an undocumented
    event is silent schema drift.

``stale-pragma``
    Opt-in (``--strict-pragmas``): an ``allow[...]`` pragma that no
    longer suppresses any finding, or that names an unknown rule.
    Stale pragmas hide real regressions when the code under them
    changes.

Suppressing a finding
---------------------
Put ``# repolint: allow[rule-name]`` (comma-separated list allowed) on
the offending line or the line directly above it::

    except Exception:  # repolint: allow[broad-except] — observer isolation

Only real comments count: pragma-shaped text inside strings or
docstrings (like the example above) is ignored.

Usage
-----
::

    python tools/repolint.py src/ [more paths...] [--format text|json]
    python tools/repolint.py src/ --strict-pragmas
    python tools/repolint.py --list

Exit status is 1 when any finding is reported, 0 when clean.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import pathlib
import re
import sys
import tokenize
from dataclasses import dataclass

#: rule-name -> one-line description (the ``--list`` output).
RULES: dict[str, str] = {
    "wall-clock": (
        "direct time.time()/datetime.now() call; use an injectable clock"
    ),
    "broad-except": (
        "broad except handler without a repolint pragma justifying it"
    ),
    "lock-callback": (
        "observer callback invoked while holding self._lock"
    ),
    "contextvar-reset": (
        "ContextVar token is never reset in a finally block"
    ),
    "fsync-rename": (
        "os.rename/os.replace without an fsync in the same function"
    ),
    "unseeded-random": (
        "unseeded RNG (module-level random.*, Random(), default_rng())"
    ),
    "metric-catalog": (
        "metasql_* metric name constructed in code but missing from the "
        "metrics catalog doc (pass --metrics-doc)"
    ),
    "event-catalog": (
        "journal event name emitted in code but missing from the "
        "journal-event catalog doc (pass --events-doc)"
    ),
    "stale-pragma": (
        "allow[...] pragma that suppresses nothing "
        "(pass --strict-pragmas)"
    ),
}

#: Registry factory methods whose literal first argument is a metric name.
_METRIC_FACTORIES = {"counter", "gauge", "histogram"}

def pragma_pattern(tool: str) -> "re.Pattern[str]":
    """The ``# <tool>: allow[...]`` pragma regex for one lint tool.

    Shared with :mod:`locklint`, whose diagnostic codes are uppercase
    (``CC001``), so the rule-list charset covers both naming styles.
    """
    return re.compile(rf"#\s*{tool}:\s*allow\[([A-Za-z0-9\-,\s]+)\]")


_PRAGMA = pragma_pattern("repolint")

#: Wall-clock callables that must never be invoked directly.
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: random-module helpers whose module-level call is unseeded by design.
_RANDOM_MODULE_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "betavariate",
    "expovariate",
    "triangular",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file location."""

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_pragmas(
    source: str, tool: str = "repolint"
) -> dict[int, set[str]]:
    """Line number -> set of rule names allowed on that line.

    Only *real* ``#`` comments count (found via :mod:`tokenize`), so a
    pragma-shaped example inside a string or docstring neither
    suppresses findings nor registers as stale under
    ``--strict-pragmas``.
    """
    pattern = _PRAGMA if tool == "repolint" else pragma_pattern(tool)
    allowed: dict[int, set[str]] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = pattern.search(tok.string)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        allowed.setdefault(tok.start[0], set()).update(
            rule for rule in rules if rule
        )
    return allowed


_pragmas = parse_pragmas


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_lock(node: ast.AST) -> bool:
    """Whether *node* is ``self._lock`` (or ``self.<...>_lock``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (node.attr == "_lock" or node.attr.endswith("_lock"))
    )


class _Checker(ast.NodeVisitor):
    """Single-pass AST walker applying every rule to one module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._lock_depth = 0
        self._function_stack: list[ast.AST] = []

    # -- reporting ------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                message=message,
            )
        )

    # -- structural visitors -------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(
            _is_self_lock(item.context_expr) for item in node.items
        )
        if holds_lock:
            self._lock_depth += 1
        self.generic_visit(node)
        if holds_lock:
            self._lock_depth -= 1

    def _visit_function(self, node) -> None:
        self._function_stack.append(node)
        saved_depth, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = saved_depth
        self._function_stack.pop()
        self._check_contextvar_tokens(node)
        self._check_fsync_rename(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- broad-except ---------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        if broad:
            caught = node.type.id if node.type is not None else "bare"
            self.report(
                "broad-except",
                node,
                f"broad except ({caught}) needs "
                "'# repolint: allow[broad-except]' with a justification",
            )
        self.generic_visit(node)

    # -- call-driven rules ---------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        self._check_wall_clock(node, dotted)
        self._check_lock_callback(node)
        self._check_unseeded_random(node, dotted)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, dotted: str | None) -> None:
        if dotted is None:
            return
        parts = tuple(dotted.split("."))
        if parts[-2:] in _WALL_CLOCK_CALLS or dotted in (
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
        ):
            self.report(
                "wall-clock",
                node,
                f"direct {dotted}() call; route timestamps through an "
                "injectable clock",
            )

    def _check_lock_callback(self, node: ast.Call) -> None:
        if self._lock_depth == 0:
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return
        if func.attr.startswith("on_") or func.attr == "_notify":
            self.report(
                "lock-callback",
                node,
                f"self.{func.attr}() invoked under self._lock; queue the "
                "event and flush after releasing the lock",
            )

    def _check_unseeded_random(
        self, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted is None:
            return
        unseeded = not node.args and not node.keywords
        if dotted == "random.Random" and unseeded:
            self.report(
                "unseeded-random",
                node,
                "random.Random() without a seed; pass an explicit seed",
            )
        elif dotted.startswith("random.") and (
            dotted.split(".", 1)[1] in _RANDOM_MODULE_FNS
        ):
            self.report(
                "unseeded-random",
                node,
                f"module-level {dotted}() uses the shared unseeded RNG; "
                "use a seeded random.Random instance",
            )
        elif dotted.endswith("random.default_rng") and unseeded:
            self.report(
                "unseeded-random",
                node,
                "default_rng() without a seed; pass an explicit seed",
            )
        elif (
            (".random." in dotted or dotted.startswith("numpy.random."))
            and not dotted.endswith("default_rng")
            and dotted.rsplit(".", 2)[-2] == "random"
        ):
            self.report(
                "unseeded-random",
                node,
                f"legacy numpy global-state RNG {dotted}(); use a seeded "
                "np.random.default_rng Generator",
            )

    # -- function-scoped rules -----------------------------------------

    def _check_contextvar_tokens(self, node) -> None:
        token_sets: dict[str, ast.AST] = {}
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and child.targets[0].id.lower().endswith("token")
                and isinstance(child.value, ast.Call)
                and isinstance(child.value.func, ast.Attribute)
                and child.value.func.attr == "set"
            ):
                token_sets[child.targets[0].id] = child
        if not token_sets:
            return
        reset_names: set[str] = set()
        for child in ast.walk(node):
            if not isinstance(child, ast.Try) or not child.finalbody:
                continue
            for stmt in child.finalbody:
                for call in ast.walk(stmt):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "reset"
                        and len(call.args) == 1
                        and isinstance(call.args[0], ast.Name)
                    ):
                        reset_names.add(call.args[0].id)
        for name, assign in token_sets.items():
            if name not in reset_names:
                self.report(
                    "contextvar-reset",
                    assign,
                    f"ContextVar token '{name}' is set but never "
                    "reset in a finally block",
                )

    def _check_fsync_rename(self, node) -> None:
        renames: list[ast.Call] = []
        synced = False
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            dotted = _dotted(child.func)
            name = (
                dotted
                if dotted is not None
                else (
                    child.func.id
                    if isinstance(child.func, ast.Name)
                    else ""
                )
            )
            if name in ("os.rename", "os.replace"):
                renames.append(child)
            elif "fsync" in name.rsplit(".", 1)[-1]:
                synced = True
        if renames and not synced:
            for call in renames:
                self.report(
                    "fsync-rename",
                    call,
                    f"{_dotted(call.func)}() without an os.fsync in the "
                    "same function; the rename may promote torn data",
                )


#: Rules that are doc- or flag-driven and therefore never honour
#: inline ``allow[...]`` pragmas; a pragma naming one is always stale.
_PRAGMA_IMMUNE = {"metric-catalog", "event-catalog", "stale-pragma"}


def lint_source(
    source: str, path: str = "<string>", strict_pragmas: bool = False
) -> list[Finding]:
    """Lint one module's source text, honouring inline pragmas."""
    tree = ast.parse(source, filename=path)
    checker = _Checker(path)
    checker.visit(tree)
    allowed = _pragmas(source)
    kept = []
    used: set[tuple[int, str]] = set()
    for finding in checker.findings:
        suppressed = False
        for line in (finding.line, finding.line - 1):
            if finding.rule in allowed.get(line, set()):
                used.add((line, finding.rule))
                suppressed = True
        if not suppressed:
            kept.append(finding)
    if strict_pragmas:
        for line, rules in sorted(allowed.items()):
            for rule in sorted(rules):
                if (line, rule) in used:
                    continue
                if rule not in RULES:
                    message = f"pragma allows unknown rule {rule!r}"
                elif rule in _PRAGMA_IMMUNE:
                    message = (
                        f"allow[{rule}] has no effect; the rule is "
                        "doc/flag-driven and ignores pragmas"
                    )
                else:
                    message = (
                        f"stale pragma: allow[{rule}] suppresses "
                        "nothing on this line; remove it"
                    )
                kept.append(
                    Finding(
                        rule="stale-pragma",
                        path=path,
                        line=line,
                        message=message,
                    )
                )
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule))


def iter_python_files(paths: list[str]) -> list[pathlib.Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: list[str], strict_pragmas: bool = False
) -> list[Finding]:
    """Lint every ``.py`` file under *paths*."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_source(
                file.read_text(encoding="utf-8"),
                str(file),
                strict_pragmas=strict_pragmas,
            )
        )
    return findings


def collect_metric_names(
    paths: list[str],
) -> dict[str, list[tuple[str, int]]]:
    """Every ``metasql_*`` metric name constructed under *paths*.

    A metric name is the literal first argument of a
    ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call —
    the registry factory idiom — so ContextVar names, dict keys, and
    other strings that merely start with ``metasql_`` are not collected.
    Returns name -> list of ``(path, line)`` construction sites.
    """
    names: dict[str, list[tuple[str, int]]] = {}
    for file in iter_python_files(paths):
        tree = ast.parse(
            file.read_text(encoding="utf-8"), filename=str(file)
        )
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORIES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value.startswith("metasql_")
            ):
                continue
            names.setdefault(node.args[0].value, []).append(
                (str(file), node.lineno)
            )
    return names


def check_metric_catalog(
    paths: list[str], docs: list[str]
) -> list[Finding]:
    """Findings for constructed metric names absent from every doc."""
    catalog = ""
    for doc in docs:
        catalog += pathlib.Path(doc).read_text(encoding="utf-8")
    findings = []
    for name, sites in sorted(collect_metric_names(paths).items()):
        if name in catalog:
            continue
        path, line = sites[0]
        findings.append(
            Finding(
                rule="metric-catalog",
                path=path,
                line=line,
                message=(
                    f"metric {name!r} is constructed here but not "
                    f"documented in {', '.join(docs)}"
                ),
            )
        )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def collect_event_names(
    paths: list[str],
) -> dict[str, list[tuple[str, int]]]:
    """Every journal event name emitted under *paths*.

    An event name is the literal string value of an ``"event"`` key in
    a dict literal — the ``journal.append({"event": ..., ...})`` idiom —
    so reads like ``record.get("event")`` are not collected.
    Returns name -> list of ``(path, line)`` emission sites.
    """
    names: dict[str, list[tuple[str, int]]] = {}
    for file in iter_python_files(paths):
        tree = ast.parse(
            file.read_text(encoding="utf-8"), filename=str(file)
        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "event"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    names.setdefault(value.value, []).append(
                        (str(file), value.lineno)
                    )
    return names


def check_event_catalog(
    paths: list[str], docs: list[str]
) -> list[Finding]:
    """Findings for emitted event names absent from every doc.

    Event names are short English words (``eval``, ``translate``), so a
    bare substring match would trivially pass; the doc must carry the
    name as code — ``` `name` ``` or ``"name"`` — to count.
    """
    catalog = ""
    for doc in docs:
        catalog += pathlib.Path(doc).read_text(encoding="utf-8")
    findings = []
    for name, sites in sorted(collect_event_names(paths).items()):
        if f"`{name}`" in catalog or f'"{name}"' in catalog:
            continue
        path, line = sites[0]
        findings.append(
            Finding(
                rule="event-catalog",
                path=path,
                line=line,
                message=(
                    f"journal event {name!r} is emitted here but not "
                    f"documented in {', '.join(docs)}"
                ),
            )
        )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repolint", description=__doc__.splitlines()[0]
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--list", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--metrics-doc",
        action="append",
        default=[],
        metavar="DOC",
        help="metrics catalog doc(s); enables the metric-catalog rule "
        "over the given source paths (repeatable)",
    )
    parser.add_argument(
        "--events-doc",
        action="append",
        default=[],
        metavar="DOC",
        help="journal-event catalog doc(s); enables the event-catalog "
        "rule over the given source paths (repeatable)",
    )
    parser.add_argument(
        "--strict-pragmas",
        action="store_true",
        help="flag allow[...] pragmas that no longer suppress anything",
    )
    args = parser.parse_args(argv)

    if args.list:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule:18s} {summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list)")

    findings = lint_paths(args.paths, strict_pragmas=args.strict_pragmas)
    if args.metrics_doc:
        findings = sorted(
            findings + check_metric_catalog(args.paths, args.metrics_doc),
            key=lambda f: (f.path, f.line, f.rule),
        )
    if args.events_doc:
        findings = sorted(
            findings + check_event_catalog(args.paths, args.events_doc),
            key=lambda f: (f.path, f.line, f.rule),
        )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
