#!/usr/bin/env python
"""Anatomy of the two-stage ranking pipeline on one question (Table 1).

Reproduces the paper's Table 1 scenario: a first-stage bi-encoder scores a
group of near-miss candidates, the phrase-level features of the second
stage expose the fine-grained mismatches, and the final ranking puts the
gold query first even when its first-stage cosine is *not* the highest.

Run:  python examples/ranking_anatomy.py
"""

from repro.core.metadata import extract_metadata
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.core.rank_stage1 import sql_surface
from repro.data.spider import build_spider
from repro.models.registry import create_model
from repro.sqlkit.compare import exact_match
from repro.sqlkit.printer import to_sql
from repro.sqlkit.sql2nl import unit_phrases


def main() -> None:
    print("Building SpiderSim and training MetaSQL (lgesql) ...")
    benchmark = build_spider(train_per_domain=60, dev_per_domain=10)
    pipeline = MetaSQL(
        create_model("lgesql"), MetaSQLConfig(ranker_train_questions=250)
    )
    pipeline.train(benchmark.train)

    # Pick a dev question where ranking actually has work to do.
    dev = benchmark.dev
    for example in dev.examples:
        db = dev.database(example.db_id)
        candidates = pipeline.candidates(example.question, db)
        hits = [exact_match(c.query, example.sql) for c in candidates]
        if any(hits) and not hits[0] and len(candidates) >= 4:
            break

    print(f"\nNL query: {example.question}")
    print(f"Gold SQL: {example.sql_text}\n")

    schema = db.schema
    surfaces = [sql_surface(c.query, schema) for c in candidates]
    stage1 = dict(
        pipeline.stage1.rank(example.question, surfaces, top_k=len(surfaces))
    )

    print("Candidates (stage-1 cosine, stage-2 multi-grained score):")
    stage2_input = [
        (surfaces[i], tuple(unit_phrases(c.query, schema)))
        for i, c in enumerate(candidates)
    ]
    stage2 = dict(pipeline.stage2.rank(example.question, stage2_input))
    order = sorted(range(len(candidates)), key=lambda i: -stage2.get(i, -99))
    for index in order:
        candidate = candidates[index]
        mark = "*" if exact_match(candidate.query, example.sql) else " "
        print(
            f"  {mark} s1={stage1.get(index, 0):6.3f} "
            f"s2={stage2.get(index, 0):7.2f}  {to_sql(candidate.query)}"
        )

    print("\nPhrase decomposition of the top-ranked candidate:")
    best = candidates[order[0]]
    for phrase in unit_phrases(best.query, schema):
        print(f"  - {phrase}")
    print("\nMetadata condition that generated it:")
    print(f"  {best.metadata.flatten() if best.metadata else '(plain beam)'}")
    print(f"\nGold metadata: {extract_metadata(example.sql).flatten()}")


if __name__ == "__main__":
    main()
