#!/usr/bin/env python
"""NLIDB over a user-defined database: ask NL questions, run the SQL.

Shows how to plug your own schema and rows into the framework: MetaSQL is
trained on SpiderSim, then translates questions against the *unseen* bookshop
database (zero-shot, like the paper's ScienceBenchmark setting) and executes
the ranked SQL to print answer rows.

Run:  python examples/custom_database.py
"""

from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.spider import build_spider
from repro.models.registry import create_model
from repro.schema.database import Database
from repro.schema.executor import execute
from repro.schema.schema import NUMBER, Column, ForeignKey, Schema, Table


def build_bookshop() -> Database:
    schema = Schema(
        db_id="bookshop",
        tables=(
            Table(
                "author",
                (
                    Column("author_id", NUMBER, phrase="author id"),
                    Column("name", phrase="author name"),
                    Column("country"),
                ),
                phrase="author",
                synonyms=("writer",),
            ),
            Table(
                "book",
                (
                    Column("book_id", NUMBER, phrase="book id"),
                    Column("title", phrase="book title"),
                    Column("author_id", NUMBER, phrase="author id"),
                    Column("price", NUMBER),
                    Column("stock", NUMBER, phrase="copies in stock"),
                ),
                phrase="book",
                synonyms=("title",),
            ),
        ),
        foreign_keys=(ForeignKey("book", "author_id", "author", "author_id"),),
    )
    db = Database(schema)
    db.insert_many(
        "author",
        [
            {"author_id": 1, "name": "Maya Okafor", "country": "Kenya"},
            {"author_id": 2, "name": "Liam Berg", "country": "Norway"},
            {"author_id": 3, "name": "Rosa Duarte", "country": "Brazil"},
        ],
    )
    db.insert_many(
        "book",
        [
            {"book_id": 1, "title": "Night Harbor", "author_id": 1,
             "price": 18, "stock": 12},
            {"book_id": 2, "title": "Silver Lining", "author_id": 2,
             "price": 24, "stock": 3},
            {"book_id": 3, "title": "Open Water", "author_id": 1,
             "price": 15, "stock": 7},
            {"book_id": 4, "title": "Paper Moon", "author_id": 3,
             "price": 31, "stock": 9},
        ],
    )
    return db


QUESTIONS = [
    "How many books are there?",
    "Show the book title of books whose price is greater than 20",
    "Find the author name of authors whose country is Kenya",
    "What is the average price of books?",
    "Show the book title of books with the highest stock",
]


def main() -> None:
    print("Training MetaSQL on SpiderSim (the bookshop DB stays unseen) ...")
    benchmark = build_spider(train_per_domain=60, dev_per_domain=6)
    pipeline = MetaSQL(
        create_model("resdsql"), MetaSQLConfig(ranker_train_questions=200)
    )
    pipeline.train(benchmark.train)

    db = build_bookshop()
    for question in QUESTIONS:
        print(f"\nQ: {question}")
        query = pipeline.translate(question, db)
        if query is None:
            print("   (no translation)")
            continue
        from repro.sqlkit.printer import to_sql

        print(f"   SQL: {to_sql(query)}")
        try:
            rows = execute(query, db)
        except Exception as error:  # noqa: BLE001 - demo output
            print(f"   execution failed: {error}")
            continue
        for row in rows[:5]:
            print(f"   -> {row}")


if __name__ == "__main__":
    main()
