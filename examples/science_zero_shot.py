#!/usr/bin/env python
"""Zero-shot transfer to ScienceBenchmark-sim (the paper's Section IV setup).

Trains on SpiderSim only, then evaluates on the three scientific databases
(OncoMX / Cordis / SDSS) whose symbolic schemas and domain phrasings were
never seen — the paper's *Spider Train (Zero-Shot)* setting.

Run:  python examples/science_zero_shot.py
"""

from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.sciencebench import build_sciencebenchmark
from repro.data.spider import build_spider
from repro.eval.evaluate import evaluate_metasql, evaluate_model
from repro.eval.report import delta, format_table, pct
from repro.models.registry import create_model


def main() -> None:
    print("Training on SpiderSim only ...")
    benchmark = build_spider(train_per_domain=90, dev_per_domain=6)
    model = create_model("gpt4")
    pipeline = MetaSQL(model, MetaSQLConfig(ranker_train_questions=250))
    pipeline.train(benchmark.train)

    science = build_sciencebenchmark(per_domain=60)
    rows = []
    for db_id in ("oncomx", "cordis", "sdss"):
        dataset = science[db_id]
        base = evaluate_model(model, dataset, compute_execution=False)
        meta = evaluate_metasql(pipeline, dataset, compute_execution=False)
        rows.append(
            [db_id, pct(base.em), pct(meta.em), delta(meta.em, base.em)]
        )
        example = dataset.examples[0]
        print(f"\n[{db_id}] sample question: {example.question}")
        print(f"  gold: {example.sql_text}")
        best = pipeline.translate(
            example.question, dataset.database(db_id)
        )
        if best is not None:
            from repro.sqlkit.printer import to_sql

            print(f"  pred: {to_sql(best)}")

    print()
    print(
        format_table(
            ["database", "GPT4 EM%", "+MetaSQL EM%", "delta"],
            rows,
            title="Zero-shot EM on ScienceBenchmark-sim",
        )
    )


if __name__ == "__main__":
    main()
