#!/usr/bin/env python
"""Table-4-style evaluation of one base model with and without MetaSQL.

Run:  python examples/spider_eval.py [model]
      (model in: bridge gap lgesql resdsql chatgpt gpt4; default lgesql)
"""

import sys

from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.spider import build_spider
from repro.eval.evaluate import evaluate_metasql, evaluate_model
from repro.eval.report import delta, format_table, pct
from repro.models.registry import create_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "lgesql"
    print("Building SpiderSim ...")
    benchmark = build_spider(train_per_domain=90, dev_per_domain=18)

    print(f"Fitting {model_name} ...")
    model = create_model(model_name)
    model.fit(benchmark.train)
    base = evaluate_model(model, benchmark.dev)

    print("Training MetaSQL ...")
    pipeline = MetaSQL(model, MetaSQLConfig(ranker_train_questions=300))
    pipeline.train(benchmark.train, fit_base_model=True)
    meta = evaluate_metasql(pipeline, benchmark.dev)

    rows = [
        [model_name, pct(base.em), pct(base.ex), "-", "-"],
        [
            f"{model_name}+metasql",
            pct(meta.em),
            pct(meta.ex),
            delta(meta.em, base.em),
            delta(meta.ex, base.ex),
        ],
    ]
    print()
    print(
        format_table(
            ["model", "EM%", "EX%", "dEM", "dEX"],
            rows,
            title=f"SpiderSim-dev results (n={len(benchmark.dev)})",
        )
    )

    print("\nEM by difficulty:")
    base_h = base.em_by_hardness()
    meta_h = meta.em_by_hardness()
    print(
        format_table(
            ["model", "easy", "medium", "hard", "extra"],
            [
                [model_name] + [pct(base_h[l]) for l in base_h],
                [f"{model_name}+metasql"] + [pct(meta_h[l]) for l in meta_h],
            ],
        )
    )


if __name__ == "__main__":
    main()
