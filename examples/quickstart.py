#!/usr/bin/env python
"""Quickstart: train MetaSQL around a base model and translate a question.

Demonstrates the paper's core observation (Fig. 1): plain beam search
produces near-duplicate candidates, while metadata-conditioned generation
produces structurally diverse ones, and the two-stage ranker picks the
right translation.

Run:  python examples/quickstart.py
"""

from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.data.spider import build_spider
from repro.models.registry import create_model
from repro.models.sketch import extract_sketch
from repro.sqlkit.compare import exact_match
from repro.sqlkit.printer import to_sql


def main() -> None:
    print("Building the SpiderSim benchmark ...")
    benchmark = build_spider(train_per_domain=60, dev_per_domain=10)
    print(benchmark.summary())

    print("\nTraining LGESQL-sim + MetaSQL (classifier, rankers) ...")
    model = create_model("lgesql")
    pipeline = MetaSQL(model, MetaSQLConfig(ranker_train_questions=250))
    pipeline.train(benchmark.train)

    example = next(
        e for e in benchmark.dev.examples if e.hardness.value != "easy"
    )
    db = benchmark.dev.database(example.db_id)
    print(f"\nQuestion ({example.db_id}): {example.question}")
    print(f"Gold SQL:  {example.sql_text}")

    print("\n--- Plain beam search (near-duplicate outputs, Fig. 1) ---")
    for candidate in model.translate(example.question, db, beam_size=5):
        print(f"  {candidate.score:8.2f}  {to_sql(candidate.query)}")

    print("\n--- Metadata-conditioned candidates (diverse, Fig. 4) ---")
    for candidate in pipeline.candidates(example.question, db)[:8]:
        condition = (
            candidate.metadata.flatten() if candidate.metadata else "(beam)"
        )
        sketch = extract_sketch(candidate.query)
        print(f"  [{condition}]")
        print(f"    -> {to_sql(candidate.query)}")

    print("\n--- Two-stage ranked translations ---")
    for ranked in pipeline.translate_ranked(example.question, db)[:5]:
        hit = "*" if exact_match(ranked.query, example.sql) else " "
        print(
            f"  {hit} stage1={ranked.stage1_score:6.3f} "
            f"stage2={ranked.stage2_score:7.2f}  {ranked.sql}"
        )

    best = pipeline.translate(example.question, db)
    verdict = "CORRECT" if exact_match(best, example.sql) else "different"
    print(f"\nTop-ranked translation is {verdict}.")


if __name__ == "__main__":
    main()
