"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this setup.py lets ``pip install -e .`` take the legacy
``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MetaSQL: a generate-then-rank framework for NL2SQL translation "
        "(ICDE 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
