"""locklint: per-code unit tests, interprocedural cases, src/ gate.

Mirrors ``test_repolint.py``: synthetic modules exercise each ``CCnnn``
diagnostic plus the resolution machinery (self calls, attribute-typed
calls, condition-wait exemptions, queue typing), then the enforcement
gate pins the repo's own ``src/`` tree clean — the static half of the
concurrency-correctness suite fails tier-1, not CI, when lock
discipline regresses.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

pytestmark = pytest.mark.lint

REPO = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "locklint.py"

spec = importlib.util.spec_from_file_location("locklint", TOOL)
locklint = importlib.util.module_from_spec(spec)
sys.modules["locklint"] = locklint  # dataclasses resolve the module by name
spec.loader.exec_module(locklint)


def codes_of(source: str, strict: bool = False) -> list[str]:
    findings = locklint.lint_source(
        textwrap.dedent(source), strict_pragmas=strict
    )
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# CC001: lock-order cycles.


CYCLE = """
    import threading

    class A:
        def __init__(self):
            self._lock = threading.Lock()
            self.b = B()

        def forward(self):
            with self._lock:
                self.b.leaf()

        def leaf(self):
            with self._lock:
                pass

    class B:
        def __init__(self):
            self._lock = threading.Lock()
            self.a = A()

        def leaf(self):
            with self._lock:
                pass

        def backward(self):
            with self._lock:
                self.a.leaf()
"""


def test_opposite_order_across_classes_is_a_cycle():
    assert codes_of(CYCLE) == ["CC001"]


def test_cycle_message_names_both_locks():
    findings = locklint.lint_source(textwrap.dedent(CYCLE))
    assert "A._lock" in findings[0].message
    assert "B._lock" in findings[0].message


def test_consistent_order_is_clean():
    source = """
        import threading

        class A:
            def __init__(self):
                self._lock = threading.Lock()
                self.b = B()

            def forward(self):
                with self._lock:
                    self.b.leaf()

        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def leaf(self):
                with self._lock:
                    pass
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# CC002: blocking while holding a lock.


def test_sleep_under_lock_flagged():
    source = """
        import threading
        import time

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def slow(self):
                with self._lock:
                    time.sleep(1)
    """
    assert codes_of(source) == ["CC002"]


def test_blocking_reached_through_helper_flagged():
    # The dataflow generalization: append itself looks innocent; the
    # fsync lives two calls down.
    source = """
        import os
        import threading

        class Log:
            def __init__(self):
                self._lock = threading.Lock()

            def append(self, line):
                with self._lock:
                    self._write(line)

            def _write(self, line):
                self._sync()

            def _sync(self):
                os.fsync(3)
    """
    findings = locklint.lint_source(textwrap.dedent(source))
    assert [f.rule for f in findings] == ["CC002"]
    assert "os.fsync" in findings[0].message
    assert "Log._write" in findings[0].message  # the call chain is named


def test_blocking_outside_lock_is_clean():
    source = """
        import os
        import threading

        class Log:
            def __init__(self):
                self._lock = threading.Lock()

            def append(self, line):
                with self._lock:
                    self._pending.append(line)
                os.fsync(3)
    """
    assert codes_of(source) == []


def test_queue_get_under_lock_flagged():
    source = """
        import queue
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.jobs = queue.Queue()

            def take(self):
                with self._lock:
                    return self.jobs.get()
    """
    assert codes_of(source) == ["CC002"]


def test_nonblocking_queue_get_is_clean():
    source = """
        import queue
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.jobs = queue.Queue()

            def take(self):
                with self._lock:
                    first = self.jobs.get_nowait()
                    second = self.jobs.get(block=False)
                    return first, second
    """
    assert codes_of(source) == []


def test_dict_get_is_not_a_queue_wait():
    source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self.items = {}

            def lookup(self, key):
                with self._lock:
                    return self.items.get(key)
    """
    assert codes_of(source) == []


def test_wait_on_own_condition_is_exempt():
    # Waiting releases the condition you hold: that is the designed use.
    source = """
        import threading

        class Guard:
            def __init__(self):
                self._cond = threading.Condition()

            def drain(self):
                with self._cond:
                    self._cond.wait_for(lambda: True)
    """
    assert codes_of(source) == []


def test_wait_while_holding_another_lock_flagged():
    source = """
        import threading

        class Guard:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition()

            def drain(self):
                with self._lock:
                    with self._cond:
                        self._cond.wait()
    """
    assert codes_of(source) == ["CC002"]


# ----------------------------------------------------------------------
# CC003: double-acquire of a non-reentrant Lock.


def test_nested_with_same_lock_flagged():
    source = """
        import threading

        class Bad:
            def __init__(self):
                self._lock = threading.Lock()

            def once(self):
                with self._lock:
                    with self._lock:
                        pass
    """
    assert codes_of(source) == ["CC003"]


def test_reacquire_via_self_call_flagged():
    source = """
        import threading

        class Bad:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    self._inner()

            def _inner(self):
                with self._lock:
                    pass
    """
    assert codes_of(source) == ["CC003"]


def test_rlock_reacquire_is_clean():
    source = """
        import threading

        class Fine:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    self._inner()

            def _inner(self):
                with self._lock:
                    pass
    """
    assert codes_of(source) == []


def test_peer_instance_same_class_not_flagged():
    # self.peer is a *different* instance of the same class; nesting its
    # lock under ours is a policy question, not a provable self-deadlock.
    source = """
        import threading

        class Worker:
            def __init__(self, peer=None):
                self._lock = threading.Lock()
                self.peer = peer if peer is not None else Worker()

            def chain(self):
                with self._lock:
                    self.peer.poke()

            def poke(self):
                with self._lock:
                    pass
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# CC004: callbacks under a lock (interprocedural lock-callback).


def test_direct_callback_under_lock_flagged():
    source = """
        import threading

        class Breaker:
            def __init__(self):
                self._lock = threading.Lock()

            def trip(self):
                with self._lock:
                    self.on_transition("open")
    """
    assert codes_of(source) == ["CC004"]


def test_callback_through_helper_flagged():
    # repolint's lexical lock-callback rule cannot see this one.
    source = """
        import threading

        class Breaker:
            def __init__(self):
                self._lock = threading.Lock()

            def trip(self):
                with self._lock:
                    self._drain()

            def _drain(self):
                self.on_transition("open")
    """
    findings = locklint.lint_source(textwrap.dedent(source))
    assert [f.rule for f in findings] == ["CC004"]
    assert "Breaker._drain" in findings[0].message


def test_queue_then_flush_outside_is_clean():
    source = """
        import threading

        class Breaker:
            def __init__(self):
                self._lock = threading.Lock()

            def trip(self):
                with self._lock:
                    self._pending.append("open")
                self.on_transition("open")
    """
    assert codes_of(source) == []


# ----------------------------------------------------------------------
# CC005: lockdep factory name hygiene.


def test_mismatched_lockdep_name_flagged():
    source = """
        from repro.devtools.lockdep import new_lock

        class Service:
            def __init__(self):
                self._lock = new_lock("Registry._lock")
    """
    findings = locklint.lint_source(textwrap.dedent(source))
    assert [f.rule for f in findings] == ["CC005"]
    assert "Service._lock" in findings[0].message


def test_matching_lockdep_name_is_clean():
    source = """
        from repro.devtools.lockdep import new_lock

        class Service:
            def __init__(self):
                self._lock = new_lock("Service._lock")
    """
    assert codes_of(source) == []


def test_factory_locks_participate_in_analysis():
    # Seam-created locks are first-class: CC003 still fires on them.
    source = """
        from repro.devtools.lockdep import new_lock

        class Bad:
            def __init__(self):
                self._lock = new_lock("Bad._lock")

            def once(self):
                with self._lock:
                    with self._lock:
                        pass
    """
    assert codes_of(source) == ["CC003"]


# ----------------------------------------------------------------------
# Pragmas + CC006.


def test_pragma_suppresses_finding():
    source = """
        import threading
        import time

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def slow(self):
                with self._lock:
                    time.sleep(1)  # locklint: allow[CC002] — justified
    """
    assert codes_of(source) == []


def test_stale_pragma_flagged_in_strict_mode():
    source = "x = 1  # locklint: allow[CC002]\n"
    findings = locklint.lint_source(source, strict_pragmas=True)
    assert [f.rule for f in findings] == ["CC006"]
    assert "stale" in findings[0].message


def test_unknown_code_pragma_flagged_in_strict_mode():
    source = "x = 1  # locklint: allow[CC999]\n"
    findings = locklint.lint_source(source, strict_pragmas=True)
    assert [f.rule for f in findings] == ["CC006"]
    assert "unknown" in findings[0].message


def test_useful_pragma_not_stale():
    source = """
        import threading
        import time

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def slow(self):
                with self._lock:
                    time.sleep(1)  # locklint: allow[CC002] — justified
    """
    assert codes_of(source, strict=True) == []


# ----------------------------------------------------------------------
# Inventory.


def test_inventory_lists_locks_sites_and_edges(tmp_path):
    (tmp_path / "mod.py").write_text(
        textwrap.dedent(
            """
            import threading

            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inner = Inner()

                def run(self):
                    with self._lock:
                        self.inner.leaf()

            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()

                def leaf(self):
                    with self._lock:
                        pass
            """
        )
    )
    inventory = locklint.build_inventory([str(tmp_path)])
    assert set(inventory["locks"]) == {"Outer._lock", "Inner._lock"}
    outer = inventory["locks"]["Outer._lock"]
    assert outer["kind"] == "lock"
    assert outer["declared"].endswith("mod.py:6")
    assert any("Outer.run" in site for site in outer["sites"])
    (edge,) = inventory["edges"]
    assert edge["held"] == "Outer._lock"
    assert edge["then"] == "Inner._lock"
    assert edge["func"] == "Outer.run"
    assert edge["via"] == ["Inner.leaf"]
    assert edge["site"].endswith("mod.py:11")  # the resolving call line


# ----------------------------------------------------------------------
# CLI.


def test_cli_list_codes():
    proc = subprocess.run(
        [sys.executable, str(TOOL), "--list"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for code in locklint.CODES:
        assert code in proc.stdout


def test_cli_clean_run(tmp_path):
    (tmp_path / "good.py").write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "0 finding(s)" in proc.stdout


def test_cli_json_output(tmp_path):
    (tmp_path / "bad.py").write_text(
        textwrap.dedent(
            """
            import threading
            import time

            class W:
                def __init__(self):
                    self._lock = threading.Lock()

                def f(self):
                    with self._lock:
                        time.sleep(1)
            """
        )
    )
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(tmp_path), "--format", "json"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "CC002"


def test_cli_inventory_flag(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import threading\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(tmp_path), "--inventory"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "C._lock" in json.loads(proc.stdout)["locks"]


# ----------------------------------------------------------------------
# Enforcement: the repo's own source tree must stay clean.


def test_src_tree_is_clean():
    findings = locklint.lint_paths([str(REPO / "src")])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"locklint findings in src/:\n{rendered}"


def test_src_tree_has_no_stale_locklint_pragmas():
    findings = locklint.lint_paths(
        [str(REPO / "src")], strict_pragmas=True
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"strict locklint findings:\n{rendered}"


def test_src_inventory_covers_the_known_lock_set():
    # The documented lock inventory (DESIGN.md §16).  A new lock in
    # src/ must be added both there and here — that is the point.
    inventory = locklint.build_inventory([str(REPO / "src")])
    assert set(inventory["locks"]) >= {
        "CircuitBreaker._lock",
        "FlightRecorder._lock",
        "Journal._lock",
        "LRUCache._lock",
        "MetricsRegistry._lock",
        "MicroBatcher._lock",
        "ShardGuard._cond",
        "SloEngine._lock",
        "Tenant._lock",
        "TenantRegistry._lock",
        "TokenBucket._lock",
        "TranslationService._lock",
        "_Family._lock",
    }
    # The held-before graph is a DAG: cycle findings would have fired
    # in the clean gate above; pin the known forward edges.
    edges = {(e["held"], e["then"]) for e in inventory["edges"]}
    assert ("SloEngine._lock", "MetricsRegistry._lock") in edges
