"""Shared fixtures: small corpora and trained components, built once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.spider import build_spider
from repro.schema.database import Database
from repro.schema.schema import NUMBER, Column, ForeignKey, Schema, Table


@pytest.fixture(scope="session")
def world_db() -> Database:
    """The paper's running example: Country / CountryLanguage."""
    schema = Schema(
        db_id="world",
        tables=(
            Table(
                "country",
                (
                    Column("code"),
                    Column("name"),
                    Column("continent"),
                    Column("population", NUMBER),
                ),
            ),
            Table(
                "countrylanguage",
                (
                    Column("countrycode"),
                    Column("language"),
                    Column("isofficial"),
                    Column("percentage", NUMBER),
                ),
            ),
        ),
        foreign_keys=(
            ForeignKey("countrylanguage", "countrycode", "country", "code"),
        ),
    )
    db = Database(schema)
    db.insert_many(
        "country",
        [
            {"code": "ABW", "name": "Aruba", "continent": "North America",
             "population": 103000},
            {"code": "AFG", "name": "Afghanistan", "continent": "Asia",
             "population": 22720000},
            {"code": "AIA", "name": "Anguilla", "continent": "North America",
             "population": 8000},
            {"code": "BMU", "name": "Bermuda", "continent": "North America",
             "population": 65000},
            {"code": "CHE", "name": "Switzerland", "continent": "Europe",
             "population": 7160400},
        ],
    )
    db.insert_many(
        "countrylanguage",
        [
            {"countrycode": "ABW", "language": "Dutch", "isofficial": "T",
             "percentage": 5.3},
            {"countrycode": "ABW", "language": "English", "isofficial": "F",
             "percentage": 9.5},
            {"countrycode": "AFG", "language": "Dari", "isofficial": "T",
             "percentage": 32.1},
            {"countrycode": "AFG", "language": "Pashto", "isofficial": "T",
             "percentage": 52.4},
            {"countrycode": "BMU", "language": "English", "isofficial": "T",
             "percentage": 100.0},
        ],
    )
    return db


@pytest.fixture(scope="session")
def tiny_benchmark():
    """A small but complete SpiderSim benchmark (fast to build)."""
    return build_spider(seed=11, train_per_domain=30, dev_per_domain=6)


@pytest.fixture(scope="session")
def fitted_lgesql(tiny_benchmark):
    from repro.models.registry import create_model

    model = create_model("lgesql")
    model.fit(tiny_benchmark.train)
    return model


@pytest.fixture(scope="session")
def trained_pipeline(tiny_benchmark):
    """One trained MetaSQL pipeline shared across integration tests."""
    from repro.core.classifier import ClassifierConfig
    from repro.core.pipeline import MetaSQL, MetaSQLConfig
    from repro.models.registry import create_model

    config = MetaSQLConfig(
        ranker_train_questions=90,
        classifier=ClassifierConfig(epochs=25),
    )
    model = create_model("lgesql")
    pipe = MetaSQL(model, config)
    pipe.train(tiny_benchmark.train)
    return pipe


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
