"""Serving + durability layer tests: deadlines, breakers, admission
control, retry/backoff, crash-safe checkpointing, warm-start recovery.

Everything is deterministic: clocks are injected, jitter is seeded,
faults come from the PR-1 ``FAULTS`` registry, and blocking jobs are
gated on events rather than sleeps.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.persist import load_pipeline, save_pipeline
from repro.core.pipeline import RankedResult, RankedTranslation
from repro.core.resilience import (
    FAULTS,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    FaultRecord,
    InjectedFault,
    TranslationReport,
    current_deadline,
    deadline_scope,
    guarded_call,
)
from repro.serve import CheckpointStore, ServiceConfig, TranslationService
from repro.sqlkit.errors import (
    CheckpointError,
    DeadlineExceeded,
    Overloaded,
    ServiceStopped,
)
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql

pytestmark = [pytest.mark.robustness, pytest.mark.serve]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


class FakeClock:
    """Manually advanced monotonic clock for breakers and deadlines."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class SteppingClock:
    """A clock that advances a fixed step on every read.

    Lets a test place deadline expiry at an exact stage boundary: the
    pipeline reads the clock once at Deadline creation and once per
    cooperative checkpoint.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _ranked(sql: str = "SELECT name FROM country") -> RankedTranslation:
    return RankedTranslation(
        query=parse_sql(sql), stage1_score=1.0, stage2_score=1.0, metadata=None
    )


class StubPipeline:
    """Duck-typed pipeline for service unit tests.

    ``script`` is a list of behaviours consumed one per call:
    ``"ok"`` returns one translation, ``"transient"``/``"fatal"`` return
    an empty result with a terminal fault record of that taxonomy class,
    ``"block"`` waits on :attr:`gate` first, then returns ok.
    """

    breakers = None

    def __init__(self, script: list[str] | None = None) -> None:
        self.script = list(script or [])
        self.calls = 0
        self.gate = threading.Event()
        self.seen_deadlines: list[Deadline | None] = []

    def translate_ranked_report(self, question, db, compositions=None):
        self.calls += 1
        self.seen_deadlines.append(current_deadline())
        action = self.script.pop(0) if self.script else "ok"
        report = TranslationReport(question=question)
        if action == "block":
            assert self.gate.wait(10), "test gate never opened"
            action = "ok"
        if action == "ok":
            return RankedResult([_ranked()], report)
        report.record(
            FaultRecord(
                stage="generate",
                error_type="TransientError" if action == "transient" else "StageError",
                error="injected by StubPipeline",
                fallback="empty",
                transient=(action == "transient"),
            )
        )
        return RankedResult([], report)


# ----------------------------------------------------------------------
# Deadline primitive.


class TestDeadline:
    def test_expiry_math(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock.now)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_check_raises_typed_error(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock.now)
        deadline.check("stage1")  # not expired: no raise
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("stage1")
        assert info.value.stage == "stage1"
        assert info.value.budget == pytest.approx(1.0)

    def test_ambient_scope_installs_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline(1.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is deadline
        assert current_deadline() is None


# ----------------------------------------------------------------------
# Circuit-breaker state machine.


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("stage1", threshold=3, cooldown=30.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("stage1", threshold=2, cooldown=30.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "stage1", threshold=1, cooldown=10.0, clock=clock.now
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent calls stay refused
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "stage1", threshold=1, cooldown=10.0, clock=clock.now
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_snapshot_counts_trips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "stage2", threshold=1, cooldown=5.0, clock=clock.now
        )
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["stage"] == "stage2"
        assert snap["state"] == "open"
        assert snap["times_opened"] == 1

    def test_guarded_call_feeds_the_breaker(self):
        policy = DegradationPolicy(max_retries=1)
        report = TranslationReport(question="q")
        breaker = CircuitBreaker("stage1", threshold=2, cooldown=30.0)

        def boom():
            raise ValueError("bad")

        for _ in range(2):
            ok, _ = guarded_call(
                "stage1", boom, policy, report, fallback="skip", breaker=breaker
            )
            assert not ok
        assert breaker.state == "open"
        # Open breaker short-circuits: fn not called, BreakerOpen recorded.
        ok, _ = guarded_call(
            "stage1",
            lambda: pytest.fail("must not be called"),
            policy,
            report,
            fallback="skip",
            breaker=breaker,
        )
        assert not ok
        assert report.faults[-1].error_type == "BreakerOpen"

    def test_transient_recovery_counts_as_success(self):
        policy = DegradationPolicy(max_retries=2)
        report = TranslationReport(question="q")
        breaker = CircuitBreaker("stage1", threshold=1, cooldown=30.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedFault("stage1.rank", transient=True)
            return "value"

        ok, value = guarded_call(
            "stage1", flaky, policy, report, fallback="skip", breaker=breaker
        )
        assert ok and value == "value"
        assert breaker.state == "closed"


# ----------------------------------------------------------------------
# Breakers wired through the pipeline (acceptance: open after N faults,
# recover through half-open).


class TestPipelineBreakers:
    @pytest.fixture()
    def example_db(self, tiny_benchmark):
        example = tiny_benchmark.dev.examples[0]
        return example, tiny_benchmark.dev.database(example.db_id)

    @pytest.fixture()
    def fake_board(self, trained_pipeline):
        """Swap a deterministic breaker board onto the shared pipeline."""
        clock = FakeClock()
        board = BreakerBoard(threshold=3, cooldown=30.0, clock=clock.now)
        previous = trained_pipeline.breakers
        trained_pipeline.breakers = board
        yield board, clock
        trained_pipeline.breakers = previous

    def test_breaker_opens_skips_and_recovers(
        self, trained_pipeline, example_db, fake_board
    ):
        example, db = example_db
        board, clock = fake_board
        FAULTS.arm("stage1.rank", times=None)
        for _ in range(3):
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
            assert "generation-order" in result.report.fallbacks()
        assert board["stage1"].state == "open"
        assert FAULTS.fired("stage1.rank") == 3

        # Open: the stage is skipped outright (failpoint not even
        # reached) and its existing fallback still produces an answer.
        result = trained_pipeline.translate_ranked_report(example.question, db)
        assert FAULTS.fired("stage1.rank") == 3
        assert result.translations
        assert any(
            r.error_type == "BreakerOpen" and r.stage == "stage1"
            for r in result.report.faults
        )

        # Recovery: cooldown elapses, the half-open probe succeeds (the
        # fault is disarmed), the breaker closes again.
        FAULTS.disarm("stage1.rank")
        clock.advance(30.5)
        assert board["stage1"].state == "half-open"
        result = trained_pipeline.translate_ranked_report(example.question, db)
        assert board["stage1"].state == "closed"
        assert not result.report.stage_faults("stage1")

    def test_failed_probe_reopens(
        self, trained_pipeline, example_db, fake_board
    ):
        example, db = example_db
        board, clock = fake_board
        FAULTS.arm("stage1.rank", times=None)
        for _ in range(3):
            trained_pipeline.translate_ranked_report(example.question, db)
        clock.advance(30.5)
        # Probe runs against the still-armed fault and fails.
        trained_pipeline.translate_ranked_report(example.question, db)
        assert board["stage1"].state == "open"

    def test_breakers_disabled_by_policy(self):
        assert DegradationPolicy(breaker_threshold=0).make_breakers() is None


# ----------------------------------------------------------------------
# Deadline checkpoints through the pipeline (acceptance: expired
# deadline -> degraded-but-valid RankedResult, deadline on the report).


class TestPipelineDeadlines:
    @pytest.fixture()
    def example_db(self, tiny_benchmark):
        example = tiny_benchmark.dev.examples[0]
        return example, tiny_benchmark.dev.database(example.db_id)

    def test_already_expired_returns_empty_with_record(
        self, trained_pipeline, example_db
    ):
        example, db = example_db
        result = trained_pipeline.translate_ranked_report(
            example.question, db, deadline=Deadline(0.0)
        )
        assert result.translations == []
        assert result.report.deadline_expired
        assert result.report.deadline_stage == "classify"
        assert result.report.deadline_budget == 0.0
        assert result.report.degraded

    def test_expiry_before_stage1_degrades_to_generation_order(
        self, trained_pipeline, example_db
    ):
        example, db = example_db
        # Clock reads: t=1 at Deadline creation, then one per boundary:
        # classify (elapsed 1), generate (2), stage1 (3) -> expired.
        deadline = Deadline(2.5, clock=SteppingClock(step=1.0))
        with FAULTS.inject("stage1.rank", exc=AssertionError, times=None):
            result = trained_pipeline.translate_ranked_report(
                example.question, db, deadline=deadline
            )
        # Stage 1 was never invoked (the armed failpoint never fired),
        # yet a ranked answer still came out of the generation order.
        assert FAULTS.fired("stage1.rank") == 0
        assert result.translations
        assert result.report.deadline_stage == "stage1"
        assert "generation-order" in result.report.fallbacks()
        scores = [r.stage1_score for r in result.translations]
        assert scores == sorted(scores, reverse=True)

    def test_expiry_before_stage2_keeps_stage1_order(
        self, trained_pipeline, example_db
    ):
        example, db = example_db
        deadline = Deadline(3.5, clock=SteppingClock(step=1.0))
        with FAULTS.inject("stage2.rank", exc=AssertionError, times=None):
            result = trained_pipeline.translate_ranked_report(
                example.question, db, deadline=deadline
            )
        assert FAULTS.fired("stage2.rank") == 0
        assert result.translations
        assert result.report.deadline_stage == "stage2"
        assert all(
            r.stage2_score == r.stage1_score for r in result.translations
        )

    def test_generous_deadline_changes_nothing(
        self, trained_pipeline, example_db
    ):
        example, db = example_db
        baseline = trained_pipeline.translate_ranked(example.question, db)
        result = trained_pipeline.translate_ranked_report(
            example.question, db, deadline=Deadline(3600.0)
        )
        assert not result.report.deadline_expired
        assert not result.report.degraded
        assert [to_sql(r.query) for r in result.translations] == [
            to_sql(r.query) for r in baseline
        ]

    def test_ambient_deadline_is_observed(self, trained_pipeline, example_db):
        example, db = example_db
        with deadline_scope(Deadline(0.0)):
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        assert result.translations == []
        assert result.report.deadline_expired


# ----------------------------------------------------------------------
# TranslationService: admission control, retries, health, lifecycle.


class TestServiceAdmission:
    def test_sheds_load_at_capacity_while_inflight_completes(self):
        stub = StubPipeline(script=["block", "ok"])
        service = TranslationService(
            stub, ServiceConfig(workers=1, queue_limit=1, jitter_seed=0)
        )
        try:
            first = service.submit("block", None)
            deadline = time.monotonic() + 5.0
            while stub.calls == 0 and time.monotonic() < deadline:
                time.sleep(0.005)  # wait for the worker to pick job 1 up
            assert stub.calls == 1
            second = service.submit("queued", None)
            with pytest.raises(Overloaded) as info:
                service.submit("rejected", None)
            assert info.value.capacity == 1
            assert service.health().rejected == 1
            # The shed request did not disturb admitted work.
            stub.gate.set()
            assert first.result(timeout=5).translations
            assert second.result(timeout=5).translations
        finally:
            stub.gate.set()
            service.shutdown()

    def test_rejects_after_shutdown(self):
        service = TranslationService(
            StubPipeline(), ServiceConfig(workers=1, queue_limit=2)
        )
        service.shutdown()
        with pytest.raises(ServiceStopped):
            service.submit("late", None)

    def test_submit_many_returns_one_future_per_request(self):
        stub = StubPipeline()
        service = TranslationService(
            stub, ServiceConfig(workers=2, queue_limit=8)
        )
        try:
            futures = service.submit_many(
                [(f"q{i}", None) for i in range(5)]
            )
            assert len(futures) == 5
            assert all(f.result(timeout=5).translations for f in futures)
            assert service.health().completed == 5
        finally:
            service.shutdown()

    def test_shutdown_drains_admitted_requests(self):
        stub = StubPipeline()
        service = TranslationService(
            stub, ServiceConfig(workers=2, queue_limit=8)
        )
        futures = [service.submit(f"q{i}", None) for i in range(6)]
        service.shutdown(wait=True)
        assert all(f.result(timeout=1).translations for f in futures)
        assert service.health().completed == 6


class TestServiceRetry:
    def _service(self, stub, max_retries=2):
        sleeps: list[float] = []
        service = TranslationService(
            stub,
            ServiceConfig(
                workers=1,
                queue_limit=4,
                max_retries=max_retries,
                backoff_base=0.05,
                backoff_cap=2.0,
                jitter_seed=7,
            ),
            sleep=sleeps.append,
        )
        return service, sleeps

    def test_transient_empty_result_is_retried_with_backoff(self):
        stub = StubPipeline(script=["transient", "transient", "ok"])
        service, sleeps = self._service(stub)
        try:
            result = service.translate("q", None, timeout=5)
            assert result.translations
            assert stub.calls == 3
            assert len(sleeps) == 2
            assert 0.0 <= sleeps[0] <= 0.05  # full jitter in [0, base)
            assert 0.0 <= sleeps[1] <= 0.10  # doubled ceiling
            assert service.health().retried == 2
        finally:
            service.shutdown()

    def test_fatal_empty_result_is_not_retried(self):
        stub = StubPipeline(script=["fatal", "ok"])
        service, sleeps = self._service(stub)
        try:
            result = service.translate("q", None, timeout=5)
            assert result.translations == []
            assert stub.calls == 1 and sleeps == []
        finally:
            service.shutdown()

    def test_retries_stop_at_the_budget(self):
        stub = StubPipeline(script=["transient"] * 10)
        service, sleeps = self._service(stub, max_retries=2)
        try:
            result = service.translate("q", None, timeout=5)
            assert result.translations == []
            assert stub.calls == 3  # 1 + max_retries
        finally:
            service.shutdown()

    def test_expired_deadline_suppresses_retry(self):
        stub = StubPipeline(script=["transient", "ok"])
        service, sleeps = self._service(stub)
        try:
            result = service.translate(
                "q", None, deadline=Deadline(0.0), timeout=5
            )
            assert result.translations == []
            assert stub.calls == 1 and sleeps == []
        finally:
            service.shutdown()


class TestServiceHealth:
    def test_deadline_is_installed_ambiently(self):
        stub = StubPipeline()
        service = TranslationService(
            stub, ServiceConfig(workers=1, queue_limit=2, default_deadline=30.0)
        )
        try:
            service.translate("q", None, timeout=5)
            assert len(stub.seen_deadlines) == 1
            assert stub.seen_deadlines[0] is not None
            assert stub.seen_deadlines[0].budget == pytest.approx(30.0)
        finally:
            service.shutdown()

    def test_snapshot_counters_and_degraded_rate(self):
        stub = StubPipeline(script=["ok", "fatal"])
        service = TranslationService(
            stub, ServiceConfig(workers=1, queue_limit=4)
        )
        try:
            service.translate("a", None, timeout=5)
            service.translate("b", None, timeout=5)
            health = service.health()
            assert health.completed == 2
            assert health.in_flight == 0
            assert health.queue_depth == 0
            assert health.degraded_rate == pytest.approx(0.5)
            assert health.ready
        finally:
            service.shutdown()
        assert not service.health().accepting

    def test_breaker_states_surface_in_health(self, trained_pipeline):
        service = TranslationService(
            trained_pipeline, ServiceConfig(workers=1, queue_limit=2)
        )
        try:
            breakers = service.health().breakers
            assert breakers.get("stage1") == "closed"
            assert set(breakers) == set(BreakerBoard.STAGES)
        finally:
            service.shutdown()


class TestServiceEndToEnd:
    def test_expired_deadline_returns_valid_degraded_result(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        service = TranslationService(
            trained_pipeline, ServiceConfig(workers=1, queue_limit=2)
        )
        try:
            result = service.translate(
                example.question, db, deadline=Deadline(0.0), timeout=30
            )
            assert isinstance(result, RankedResult)
            assert result.report.deadline_expired
            assert result.report.deadline_budget == 0.0
            assert service.health().deadline_expired == 1
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Crash-safe checkpointing (acceptance: interrupted save leaves the
# previous checkpoint loadable) and warm-start recovery.


def _ranked_sqls(pipeline, example, db):
    return [
        to_sql(r.query)
        for r in pipeline.translate_ranked(example.question, db)
    ]


class TestCrashSafeCheckpointing:
    @pytest.fixture()
    def example_db(self, tiny_benchmark):
        example = tiny_benchmark.dev.examples[0]
        return example, tiny_benchmark.dev.database(example.db_id)

    @pytest.mark.parametrize("site", ["persist.save", "persist.finalize"])
    def test_interrupted_save_preserves_previous_checkpoint(
        self, site, trained_pipeline, example_db, tmp_path
    ):
        example, db = example_db
        target = tmp_path / "ckpt"
        save_pipeline(trained_pipeline, target)
        baseline = _ranked_sqls(load_pipeline(target), example, db)

        with FAULTS.inject(site):
            with pytest.raises(InjectedFault):
                save_pipeline(trained_pipeline, target)

        # The torn save left no staging litter and the previous
        # checkpoint loads and translates exactly as before.
        assert not (tmp_path / ".ckpt.staging").exists()
        assert _ranked_sqls(load_pipeline(target), example, db) == baseline

    def test_save_over_existing_checkpoint_replaces_it(
        self, trained_pipeline, example_db, tmp_path
    ):
        example, db = example_db
        target = tmp_path / "ckpt"
        save_pipeline(trained_pipeline, target)
        save_pipeline(trained_pipeline, target)  # idempotent overwrite
        assert _ranked_sqls(
            load_pipeline(target), example, db
        ) == _ranked_sqls(trained_pipeline, example, db)


class TestCheckpointStore:
    def test_rotation_keeps_the_newest(self, trained_pipeline, tmp_path):
        store = CheckpointStore(tmp_path / "store", keep=2)
        for _ in range(3):
            store.save(trained_pipeline)
        names = [path.name for path in store.snapshots()]
        assert names == ["ckpt-00000002", "ckpt-00000003"]
        assert store.latest().name == "ckpt-00000003"

    def test_recovery_skips_corrupt_latest(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        store = CheckpointStore(tmp_path / "store", keep=3)
        good = store.save(trained_pipeline)
        bad = store.save(trained_pipeline)
        # Bit-flip the newest snapshot's weights.
        weights = bad / "weights.npz"
        data = bytearray(weights.read_bytes())
        data[len(data) // 2] ^= 0xFF
        weights.write_bytes(bytes(data))

        loaded = store.load_latest()
        assert _ranked_sqls(loaded, example, db) == _ranked_sqls(
            trained_pipeline, example, db
        )
        assert good.exists()

    def test_all_corrupt_raises_typed_error(self, trained_pipeline, tmp_path):
        store = CheckpointStore(tmp_path / "store", keep=2)
        path = store.save(trained_pipeline)
        (path / "manifest.json").unlink()
        with pytest.raises(CheckpointError):
            store.load_latest()

    def test_empty_store_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "nothing").load_latest()


class TestWarmStart:
    def test_service_from_single_checkpoint(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        target = tmp_path / "ckpt"
        save_pipeline(trained_pipeline, target)
        with TranslationService.from_checkpoint(
            target, ServiceConfig(workers=1, queue_limit=2)
        ) as service:
            result = service.translate(example.question, db, timeout=60)
            assert [to_sql(r.query) for r in result.translations] == (
                _ranked_sqls(trained_pipeline, example, db)
            )

    def test_service_from_store_skips_torn_snapshot(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        root = tmp_path / "store"
        store = CheckpointStore(root, keep=3)
        store.save(trained_pipeline)
        # Simulate a torn newer save: kill -9 mid-write via failpoint.
        with FAULTS.inject("persist.save"):
            with pytest.raises(InjectedFault):
                store.save(trained_pipeline)
        with TranslationService.from_checkpoint(
            root, ServiceConfig(workers=1, queue_limit=2)
        ) as service:
            result = service.translate(example.question, db, timeout=60)
            assert result.translations
