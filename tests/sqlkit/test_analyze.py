"""Semantic analyzer: seeded invalid corpus, gold sweep, golden rendering.

Three layers of coverage:

1. A hand-seeded corpus of invalid queries, one (or more) per diagnostic
   code, asserting the analyzer flags each with exactly the expected code.
2. A zero-false-positive sweep: every query the synthetic generators can
   produce is valid by construction, so the analyzer must emit no
   error-severity diagnostic for any of them.
3. A golden rendering file freezing codes, messages and AST paths, plus a
   hypothesis property that analysis is total and deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.sqlkit.analyze import SemanticAnalyzer, analyze, walk
from repro.sqlkit.ast import (
    ColumnRef,
    Condition,
    FromClause,
    Literal,
    Predicate,
    SelectQuery,
)
from repro.sqlkit.diagnostics import (
    DIAGNOSTIC_CODES,
    ERROR_CODES,
    Diagnostic,
    error_codes,
    has_errors,
    make_diagnostic,
    render_diagnostics,
)
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql

pytestmark = pytest.mark.lint

GOLDEN = "tests/golden/diagnostics.txt"

#: Invalid-SQL corpus: (expected code, SQL text).  Every error code the
#: analyzer can emit appears at least once; queries are minimal.
INVALID_CORPUS = [
    ("SQL001", "SELECT name FROM starport"),
    ("SQL001", "SELECT city.name FROM country"),
    ("SQL002", "SELECT flavour FROM country"),
    ("SQL002", "SELECT country.flavour FROM country"),
    # Self-join without aliases: every unqualified column is ambiguous.
    ("SQL003", "SELECT name FROM country, country"),
    ("SQL004", "SELECT name FROM country WHERE population > 'x'"),
    ("SQL004", "SELECT name FROM country WHERE name LIKE 5"),
    ("SQL004", "SELECT sum(name) FROM country"),
    ("SQL004", "SELECT name FROM country WHERE continent IN (1, 2)"),
    (
        "SQL005",
        "SELECT country.name FROM country JOIN countrylanguage "
        "ON country.population = countrylanguage.language",
    ),
    ("SQL006", "SELECT name, count(*) FROM country"),
    (
        "SQL006",
        "SELECT continent, name FROM country GROUP BY continent",
    ),
    ("SQL006", "SELECT *, count(*) FROM country"),
    (
        "SQL008",
        "SELECT name FROM country UNION "
        "SELECT name, code FROM country",
    ),
    (
        "SQL009",
        "SELECT name FROM country WHERE code IN "
        "(SELECT countrycode, language FROM countrylanguage)",
    ),
    (
        "SQL010",
        "SELECT continent, count(*) FROM country "
        "GROUP BY continent ORDER BY population",
    ),
    (
        "SQL010",
        "SELECT name FROM country ORDER BY count(*) DESC",
    ),
    ("SQL011", "SELECT max(count(*)) FROM country"),
    ("SQL012", "SELECT name FROM country WHERE count(*) > 3"),
]

#: Warning corpus: (expected code, SQL text) — legal but suspicious.
WARNING_CORPUS = [
    ("SQL101", "SELECT name FROM country LIMIT 3"),
    ("SQL102", "SELECT name, name FROM country"),
    (
        "SQL103",
        "SELECT name FROM country WHERE population = population",
    ),
]

#: Valid queries the analyzer must stay silent on (regression guards for
#: the trickier resolution paths: joins, subqueries, grouping).
VALID_CORPUS = [
    "SELECT name FROM country",
    "SELECT country.name FROM country WHERE country.population > 1000",
    (
        "SELECT country.name FROM country JOIN countrylanguage "
        "ON country.code = countrylanguage.countrycode "
        "WHERE countrylanguage.language = 'Dutch'"
    ),
    (
        "SELECT continent, count(*) FROM country "
        "GROUP BY continent HAVING count(*) > 2"
    ),
    (
        "SELECT name FROM country WHERE population > "
        "(SELECT avg(population) FROM country)"
    ),
    (
        "SELECT name FROM country WHERE code IN "
        "(SELECT countrycode FROM countrylanguage)"
    ),
    "SELECT name FROM country ORDER BY population DESC LIMIT 3",
    "SELECT count(*) FROM country ORDER BY count(*)",
]


@pytest.fixture(scope="module")
def analyzer(world_db):
    return SemanticAnalyzer(world_db.schema)


# ----------------------------------------------------------------------
# Seeded invalid corpus.


@pytest.mark.parametrize(("code", "sql"), INVALID_CORPUS)
def test_invalid_corpus_flagged(analyzer, code, sql):
    diagnostics = analyzer.analyze(parse_sql(sql))
    assert code in error_codes(diagnostics), render_diagnostics(diagnostics)


@pytest.mark.parametrize(("code", "sql"), WARNING_CORPUS)
def test_warning_corpus_flagged(analyzer, code, sql):
    diagnostics = analyzer.analyze(parse_sql(sql))
    assert not has_errors(diagnostics), render_diagnostics(diagnostics)
    assert code in [d.code for d in diagnostics]


def test_having_without_group_by(analyzer):
    # The repo's own parser rejects this syntactically, so the analyzer's
    # SQL007 path is reachable only through a hand-built AST (generated
    # candidates come from models that build ASTs directly).
    query = SelectQuery(
        select=(ColumnRef("name"),),
        from_=FromClause(tables=("country",)),
        having=Condition(
            predicates=(
                Predicate(ColumnRef("population"), ">", Literal(2)),
            )
        ),
    )
    assert "SQL007" in error_codes(analyzer.analyze(query))


def test_every_error_code_covered_by_corpus():
    covered = {code for code, __ in INVALID_CORPUS} | {"SQL007"}
    assert covered == set(ERROR_CODES)


def test_every_warning_code_covered_by_corpus():
    covered = {code for code, __ in WARNING_CORPUS}
    expected = set(DIAGNOSTIC_CODES) - set(ERROR_CODES)
    assert covered == expected


@pytest.mark.parametrize("sql", VALID_CORPUS)
def test_valid_corpus_clean(analyzer, sql):
    diagnostics = analyzer.analyze(parse_sql(sql))
    assert diagnostics == [], render_diagnostics(diagnostics)


def test_unknown_table_does_not_cascade(analyzer):
    # One unknown FROM table yields exactly one SQL001, not a wall of
    # unknown-column follow-ons for every reference into it.
    query = parse_sql(
        "SELECT starport.name FROM starport WHERE starport.dock > 3"
    )
    diagnostics = analyzer.analyze(query)
    assert [d.code for d in diagnostics] == ["SQL001"]


# ----------------------------------------------------------------------
# Zero-false-positive sweep over the synthetic gold generators.


@pytest.mark.parametrize("domain", sorted(SPIDER_DOMAINS))
def test_gold_queries_have_no_errors(domain):
    db = build_domain(SPIDER_DOMAINS[domain], seed=7)
    checker = SemanticAnalyzer(db.schema)
    sampler = QuerySampler(db, np.random.default_rng(11))
    for query in sampler.sample_many(40):
        diagnostics = checker.analyze(query)
        assert not has_errors(diagnostics), (
            to_sql(query) + "\n" + render_diagnostics(diagnostics)
        )


# ----------------------------------------------------------------------
# Golden rendering: freezes codes, messages and AST paths.


def test_golden_diagnostics_rendering(analyzer):
    sections = []
    for code, sql in INVALID_CORPUS + WARNING_CORPUS:
        diagnostics = analyzer.analyze(parse_sql(sql))
        sections.append(f"-- [{code}] {sql}\n{render_diagnostics(diagnostics)}")
    rendered = "\n\n".join(sections) + "\n"
    with open(GOLDEN) as handle:
        assert rendered == handle.read()


# ----------------------------------------------------------------------
# Diagnostics plumbing.


def test_diagnostic_registry_is_partitioned():
    for code, spec in DIAGNOSTIC_CODES.items():
        assert code == spec.code
        expected = "error" if code.startswith("SQL0") else "warning"
        assert spec.severity == expected


def test_unregistered_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic(code="SQL999", severity="error", message="nope")


def test_make_diagnostic_uses_registered_severity():
    assert make_diagnostic("SQL101", "m").severity == "warning"
    assert make_diagnostic("SQL002", "m").is_error


def test_render_empty():
    assert render_diagnostics([]) == "no diagnostics"


def test_walk_paths_are_deterministic(world_db):
    query = parse_sql(
        "SELECT name FROM country WHERE population > 10 ORDER BY name"
    )
    first = [(path, type(node).__name__) for path, node in walk(query)]
    second = [(path, type(node).__name__) for path, node in walk(query)]
    assert first == second
    paths = [path for path, __ in first]
    assert "where.predicates[0].left" in paths
    assert "order_by[0].expr" in paths


# ----------------------------------------------------------------------
# Totality and determinism over the whole generatable query space.


DOMAINS = sorted(SPIDER_DOMAINS)


def _sample(seed: int):
    domain = DOMAINS[seed % len(DOMAINS)]
    db = build_domain(SPIDER_DOMAINS[domain], seed=7)
    sampler = QuerySampler(db, np.random.default_rng(seed))
    return db, sampler.sample()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_analysis_total_and_deterministic(seed):
    db, query = _sample(seed)
    round_tripped = parse_sql(to_sql(query))
    first = analyze(round_tripped, db.schema)
    second = analyze(round_tripped, db.schema)
    assert first == second
    assert all(isinstance(d, Diagnostic) for d in first)
