"""Normalization tests."""

from repro.sqlkit.ast import ColumnRef, Literal
from repro.sqlkit.normalize import normalize
from repro.sqlkit.parser import parse_sql


class TestNormalize:
    def test_lowercases_identifiers(self):
        query = normalize(parse_sql("SELECT Name FROM Country"))
        assert query.select[0] == ColumnRef(column="name")
        assert query.from_.tables == ("country",)

    def test_lowercases_string_literals(self):
        query = normalize(parse_sql("SELECT a FROM t WHERE b = 'CAT'"))
        assert query.where.predicates[0].right == Literal("cat")

    def test_negated_equality_becomes_neq(self):
        query = normalize(parse_sql("SELECT a FROM t WHERE NOT b = 1"))
        predicate = query.where.predicates[0]
        assert predicate.op == "!="
        assert not predicate.negated

    def test_idempotent(self):
        query = parse_sql(
            "SELECT T1.A FROM Tbl AS T1 WHERE T1.B IN (SELECT C FROM U)"
        )
        once = normalize(query)
        assert normalize(once) == once

    def test_subqueries_normalized(self):
        query = normalize(
            parse_sql("SELECT a FROM t WHERE b IN (SELECT C FROM U)")
        )
        sub = query.where.predicates[0].right
        assert sub.select[0] == ColumnRef(column="c")

    def test_structural_equality_after_normalize(self):
        a = normalize(parse_sql("SELECT A FROM T WHERE B = 'X'"))
        b = normalize(parse_sql("select a from t where b = 'x'"))
        assert a == b
