"""Parser tests: Spider-style SQL into the AST."""

import pytest

from repro.sqlkit.ast import (
    AggExpr,
    ColumnRef,
    Literal,
    Predicate,
    SelectQuery,
    SetQuery,
    Star,
)
from repro.sqlkit.errors import SqlParseError
from repro.sqlkit.parser import parse_sql


class TestBasicSelect:
    def test_simple_projection(self):
        query = parse_sql("SELECT name FROM country")
        assert isinstance(query, SelectQuery)
        assert query.select == (ColumnRef(column="name"),)
        assert query.from_.tables == ("country",)

    def test_multiple_projections(self):
        query = parse_sql("SELECT name, population FROM country")
        assert len(query.select) == 2

    def test_distinct(self):
        query = parse_sql("SELECT DISTINCT continent FROM country")
        assert query.distinct

    def test_star(self):
        query = parse_sql("SELECT * FROM country")
        assert query.select == (Star(),)

    def test_qualified_star(self):
        query = parse_sql("SELECT country.* FROM country")
        assert query.select == (Star(table="country"),)

    def test_count_star(self):
        query = parse_sql("SELECT count(*) FROM country")
        agg = query.select[0]
        assert isinstance(agg, AggExpr)
        assert agg.func == "count"
        assert isinstance(agg.arg, Star)

    def test_agg_distinct(self):
        query = parse_sql("SELECT count(DISTINCT continent) FROM country")
        assert query.select[0].distinct


class TestAliases:
    def test_as_alias_resolution(self):
        query = parse_sql(
            "SELECT T1.name FROM country AS T1 WHERE T1.population > 5"
        )
        assert query.select[0] == ColumnRef(column="name", table="country")
        predicate = query.where.predicates[0]
        assert predicate.left.table == "country"

    def test_bare_alias_resolution(self):
        query = parse_sql("SELECT c.name FROM country c")
        assert query.select[0].table == "country"

    def test_join_with_aliases(self):
        query = parse_sql(
            "SELECT T2.language FROM country AS T1 JOIN countrylanguage AS T2 "
            "ON T1.code = T2.countrycode"
        )
        assert query.from_.tables == ("country", "countrylanguage")
        join = query.from_.joins[0]
        assert join.left == ColumnRef(column="code", table="country")


class TestWhere:
    def test_comparison_operators(self):
        for op in ("=", "!=", "<", ">", "<=", ">="):
            query = parse_sql(f"SELECT a FROM t WHERE b {op} 3")
            assert query.where.predicates[0].op == op

    def test_string_value(self):
        query = parse_sql("SELECT a FROM t WHERE b = 'cat'")
        assert query.where.predicates[0].right == Literal("cat")

    def test_and_or_connectors(self):
        query = parse_sql("SELECT a FROM t WHERE b = 1 AND c = 2 OR d = 3")
        assert query.where.connectors == ("and", "or")
        assert len(query.where.predicates) == 3

    def test_like(self):
        query = parse_sql("SELECT a FROM t WHERE b LIKE '%x%'")
        assert query.where.predicates[0].op == "like"

    def test_not_like(self):
        query = parse_sql("SELECT a FROM t WHERE b NOT LIKE '%x%'")
        assert query.where.predicates[0].negated

    def test_between(self):
        query = parse_sql("SELECT a FROM t WHERE b BETWEEN 1 AND 5")
        predicate = query.where.predicates[0]
        assert predicate.op == "between"
        assert predicate.right == Literal(1)
        assert predicate.right2 == Literal(5)

    def test_in_literal_list(self):
        query = parse_sql("SELECT a FROM t WHERE b IN ('x', 'y')")
        predicate = query.where.predicates[0]
        assert predicate.op == "in"
        assert predicate.right == (Literal("x"), Literal("y"))

    def test_negative_number(self):
        query = parse_sql("SELECT a FROM t WHERE b > -5")
        assert query.where.predicates[0].right == Literal(-5)


class TestSubqueries:
    def test_in_subquery(self):
        query = parse_sql(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)"
        )
        predicate = query.where.predicates[0]
        assert predicate.has_subquery
        assert isinstance(predicate.right, SelectQuery)

    def test_not_in_subquery(self):
        query = parse_sql("SELECT a FROM t WHERE b NOT IN (SELECT c FROM u)")
        assert query.where.predicates[0].negated

    def test_scalar_subquery(self):
        query = parse_sql(
            "SELECT a FROM t WHERE b > (SELECT avg(b) FROM t)"
        )
        predicate = query.where.predicates[0]
        assert predicate.op == ">"
        assert isinstance(predicate.right, SelectQuery)

    def test_from_subquery(self):
        query = parse_sql(
            "SELECT count(*) FROM (SELECT a FROM t GROUP BY a HAVING count(*) > 2)"
        )
        assert query.from_.subquery is not None
        assert query.from_.subquery.having is not None


class TestClauses:
    def test_group_by_having(self):
        query = parse_sql(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) >= 2"
        )
        assert query.group_by == (ColumnRef(column="a"),)
        assert query.having.predicates[0].op == ">="

    def test_order_by_desc_limit(self):
        query = parse_sql("SELECT a FROM t ORDER BY b DESC LIMIT 3")
        assert query.order_by[0].desc
        assert query.limit == 3

    def test_order_by_asc_default(self):
        query = parse_sql("SELECT a FROM t ORDER BY b")
        assert not query.order_by[0].desc

    def test_order_by_aggregate(self):
        query = parse_sql(
            "SELECT a FROM t GROUP BY a ORDER BY count(*) DESC LIMIT 1"
        )
        assert isinstance(query.order_by[0].expr, AggExpr)


class TestSetOps:
    @pytest.mark.parametrize("op", ["UNION", "INTERSECT", "EXCEPT"])
    def test_set_operations(self, op):
        query = parse_sql(
            f"SELECT a FROM t {op} SELECT a FROM t WHERE b = 1"
        )
        assert isinstance(query, SetQuery)
        assert query.op == op.lower()

    def test_paper_except_example(self):
        query = parse_sql(
            "SELECT countrycode FROM CountryLanguage EXCEPT "
            "SELECT countrycode FROM CountryLanguage WHERE language = 'English'"
        )
        assert isinstance(query, SetQuery)
        assert query.right.where is not None


class TestErrors:
    def test_empty_select_list(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT FROM t")

    def test_missing_from(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT a WHERE b = 1")

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT a FROM t extra tokens")

    def test_bad_limit(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT a FROM t LIMIT x")

    def test_unclosed_paren(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT count( FROM t")
