"""Tokenizer tests."""

import pytest

from repro.sqlkit.errors import SqlTokenError
from repro.sqlkit.tokens import IDENT, KW, NUMBER, OP, PUNCT, STRING, Token, tokenize


def kinds(sql: str) -> list[str]:
    return [t.kind for t in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [t.value for t in tokenize(sql)]


class TestTokenize:
    def test_keywords_are_lowercased(self):
        tokens = tokenize("SELECT name FROM t")
        assert tokens[0] == Token(KW, "select", 0)
        assert tokens[2].value == "from"

    def test_identifiers_keep_case(self):
        tokens = tokenize("SELECT CountryCode FROM CountryLanguage")
        assert tokens[1].value == "CountryCode"
        assert tokens[1].kind == IDENT

    def test_string_literal_content(self):
        tokens = tokenize("WHERE name = 'New York'")
        assert tokens[-1].kind == STRING
        assert tokens[-1].value == "New York"

    def test_double_quoted_string(self):
        tokens = tokenize('WHERE name = "cat"')
        assert tokens[-1].value == "cat"

    def test_numbers_integer_and_float(self):
        tokens = tokenize("LIMIT 5 OFFSET 2.75")
        numbers = [t for t in tokens if t.kind == NUMBER]
        assert [t.value for t in numbers] == ["5", "2.75"]

    def test_operators(self):
        assert values("a <= 1 AND b != 2 AND c <> 3") == [
            "a", "<=", "1", "and", "b", "!=", "2", "and", "c", "!=", "3",
        ]

    def test_punctuation_and_star(self):
        assert kinds("count ( * )") == [KW, PUNCT, PUNCT, PUNCT]

    def test_semicolon_terminates(self):
        tokens = tokenize("SELECT 1; SELECT 2")
        assert [t.value for t in tokens] == ["select", "1"]

    def test_qualified_name_tokens(self):
        assert values("t1.col") == ["t1", ".", "col"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlTokenError) as info:
            tokenize("SELECT @name")
        assert info.value.position == 7

    def test_is_kw_helper(self):
        token = tokenize("SELECT")[0]
        assert token.is_kw("select", "from")
        assert not token.is_kw("from")

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize("   ") == []
