"""Exact-set-match (EM) comparison tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.sqlkit.compare import exact_match
from repro.sqlkit.parser import parse_sql


def em(a: str, b: str) -> bool:
    return exact_match(parse_sql(a), parse_sql(b))


class TestMatching:
    def test_identical(self):
        assert em("SELECT a FROM t", "SELECT a FROM t")

    def test_case_insensitive_identifiers(self):
        assert em("SELECT Name FROM Country", "select name from country")

    def test_select_order_irrelevant(self):
        assert em("SELECT a, b FROM t", "SELECT b, a FROM t")

    def test_where_order_irrelevant(self):
        assert em(
            "SELECT a FROM t WHERE b = 1 AND c = 2",
            "SELECT a FROM t WHERE c = 2 AND b = 1",
        )

    def test_values_ignored(self):
        assert em(
            "SELECT a FROM t WHERE b = 'cat'",
            "SELECT a FROM t WHERE b = 'dog'",
        )

    def test_alias_differences_ignored(self):
        assert em(
            "SELECT T1.a FROM t AS T1 WHERE T1.b = 1",
            "SELECT t.a FROM t WHERE t.b = 1",
        )

    def test_union_commutative(self):
        assert em(
            "SELECT a FROM t WHERE b = 1 UNION SELECT a FROM t WHERE c = 2",
            "SELECT a FROM t WHERE c = 2 UNION SELECT a FROM t WHERE b = 1",
        )

    def test_join_table_order_irrelevant(self):
        assert em(
            "SELECT t.a FROM t JOIN u ON t.id = u.tid",
            "SELECT t.a FROM u JOIN t ON t.id = u.tid",
        )


class TestMismatching:
    def test_different_column(self):
        assert not em("SELECT a FROM t", "SELECT b FROM t")

    def test_different_operator(self):
        assert not em(
            "SELECT a FROM t WHERE b < 1", "SELECT a FROM t WHERE b <= 1"
        )

    def test_missing_where(self):
        assert not em("SELECT a FROM t", "SELECT a FROM t WHERE b = 1")

    def test_connector_mismatch(self):
        assert not em(
            "SELECT a FROM t WHERE b = 1 AND c = 2",
            "SELECT a FROM t WHERE b = 1 OR c = 2",
        )

    def test_distinct_mismatch(self):
        assert not em("SELECT DISTINCT a FROM t", "SELECT a FROM t")

    def test_order_direction(self):
        assert not em(
            "SELECT a FROM t ORDER BY b", "SELECT a FROM t ORDER BY b DESC"
        )

    def test_order_key_order_matters(self):
        assert not em(
            "SELECT a FROM t ORDER BY b, c", "SELECT a FROM t ORDER BY c, b"
        )

    def test_limit_value(self):
        assert not em(
            "SELECT a FROM t LIMIT 1", "SELECT a FROM t LIMIT 3"
        )

    def test_except_not_commutative(self):
        assert not em(
            "SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 1",
            "SELECT a FROM t WHERE b = 1 EXCEPT SELECT a FROM t",
        )

    def test_negation_matters(self):
        assert not em(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)",
            "SELECT a FROM t WHERE b NOT IN (SELECT c FROM u)",
        )

    def test_subquery_structure(self):
        assert not em(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)",
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)",
        )

    def test_agg_function(self):
        assert not em("SELECT max(a) FROM t", "SELECT min(a) FROM t")

    def test_paper_fig1_top1_is_wrong(self):
        gold = (
            "SELECT countrycode FROM CountryLanguage EXCEPT "
            "SELECT countrycode FROM CountryLanguage WHERE language = 'English'"
        )
        predicted = "SELECT code FROM CountryLanguage WHERE language != 'value'"
        assert not em(predicted, gold)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reflexive_and_symmetric(self, seed):
        domain = sorted(SPIDER_DOMAINS)[seed % len(SPIDER_DOMAINS)]
        db = build_domain(SPIDER_DOMAINS[domain], seed=3)
        sampler = QuerySampler(db, np.random.default_rng(seed))
        a = sampler.sample()
        b = sampler.sample()
        assert exact_match(a, a)
        assert exact_match(b, b)
        assert exact_match(a, b) == exact_match(b, a)
