"""SQL unit decomposition tests (Table 2 unit types)."""

from repro.sqlkit.parser import parse_sql
from repro.sqlkit.units import UnitType, decompose


def types_of(sql: str) -> list[UnitType]:
    return [u.unit_type for u in decompose(parse_sql(sql))]


class TestDecompose:
    def test_projection_and_join(self):
        types = types_of("SELECT a, b FROM t")
        assert types == [UnitType.PROJECTION, UnitType.PROJECTION, UnitType.JOIN]

    def test_predicates(self):
        types = types_of("SELECT a FROM t WHERE b = 1 AND c = 2")
        assert types.count(UnitType.PREDICATE) == 2

    def test_group_unit(self):
        types = types_of("SELECT a, count(*) FROM t GROUP BY a")
        assert UnitType.GROUP in types

    def test_having_is_predicate(self):
        types = types_of(
            "SELECT a FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert UnitType.PREDICATE in types

    def test_sort_unit(self):
        types = types_of("SELECT a FROM t ORDER BY b DESC LIMIT 1")
        assert types[-1] is UnitType.SORT

    def test_set_op_right_branch_is_predicate(self):
        units = decompose(
            parse_sql("SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 1")
        )
        last = units[-1]
        assert last.unit_type is UnitType.PREDICATE
        assert last.payload[1] == "except"

    def test_from_subquery_units_inlined(self):
        types = types_of(
            "SELECT count(*) FROM (SELECT a FROM t GROUP BY a)"
        )
        assert UnitType.GROUP in types

    def test_unit_counts_scale_with_structure(self):
        simple = decompose(parse_sql("SELECT a FROM t"))
        complex_ = decompose(
            parse_sql(
                "SELECT a, b FROM t JOIN u ON t.id = u.tid "
                "WHERE c = 1 GROUP BY a ORDER BY b LIMIT 2"
            )
        )
        assert len(complex_) > len(simple)
