"""Printer tests, including the parse/print round-trip property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.sqlkit.compare import exact_match
from repro.sqlkit.normalize import normalize
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql


class TestRendering:
    def test_simple(self):
        assert (
            to_sql(parse_sql("select name from country"))
            == "SELECT name FROM country"
        )

    def test_where_string(self):
        sql = to_sql(parse_sql("select a from t where b = 'cat'"))
        assert sql == "SELECT a FROM t WHERE b = 'cat'"

    def test_string_escaping(self):
        sql = to_sql(parse_sql("select a from t where b = 'O''Brien'"))
        assert "O''Brien" in sql

    def test_join_with_condition(self):
        sql = to_sql(
            parse_sql(
                "select a from t join u on t.id = u.tid where u.x = 1"
            )
        )
        assert "JOIN u ON t.id = u.tid" in sql

    def test_between(self):
        sql = to_sql(parse_sql("select a from t where b between 1 and 2"))
        assert "BETWEEN 1 AND 2" in sql

    def test_not_in_subquery(self):
        sql = to_sql(
            parse_sql("select a from t where b not in (select c from u)")
        )
        assert "NOT IN (SELECT c FROM u)" in sql

    def test_order_limit(self):
        sql = to_sql(parse_sql("select a from t order by b desc limit 2"))
        assert sql.endswith("ORDER BY b DESC LIMIT 2")

    def test_set_op(self):
        sql = to_sql(parse_sql("select a from t union select a from u"))
        assert " UNION " in sql


class TestRoundTrip:
    CASES = [
        "SELECT name FROM country",
        "SELECT DISTINCT a, b FROM t",
        "SELECT count(*) FROM t WHERE a = 'x' AND b > 3",
        "SELECT a FROM t JOIN u ON t.id = u.tid WHERE u.b != 'y'",
        "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2",
        "SELECT a FROM t ORDER BY b DESC LIMIT 1",
        "SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)",
        "SELECT a FROM t WHERE b > (SELECT avg(b) FROM t)",
        "SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 'x'",
        "SELECT count(*) FROM (SELECT a FROM t GROUP BY a HAVING count(*) > 1)",
        "SELECT a FROM t WHERE b BETWEEN 1 AND 2 OR c LIKE '%x%'",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_fixed_point(self, sql):
        query = parse_sql(sql)
        printed = to_sql(query)
        reparsed = parse_sql(printed)
        assert normalize(reparsed) == normalize(query)
        assert to_sql(reparsed) == printed

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_queries_round_trip(self, seed):
        """Property: every generator-produced query survives print->parse."""
        domain = sorted(SPIDER_DOMAINS)[seed % len(SPIDER_DOMAINS)]
        db = build_domain(SPIDER_DOMAINS[domain], seed=5)
        sampler = QuerySampler(db, np.random.default_rng(seed))
        query = sampler.sample()
        printed = to_sql(query)
        reparsed = parse_sql(printed)
        assert exact_match(reparsed, query)
        assert to_sql(reparsed) == printed
