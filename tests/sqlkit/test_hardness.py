"""Hardness level and rating tests, including paper-calibration anchors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.sqlkit.ast import (
    ColumnRef,
    Condition,
    FromClause,
    Literal,
    OrderItem,
    Predicate,
    SelectQuery,
)
from repro.sqlkit.hardness import Hardness, hardness_level, hardness_rating
from repro.sqlkit.parser import parse_sql


def level(sql: str) -> Hardness:
    return hardness_level(parse_sql(sql))


def rating(sql: str) -> int:
    return hardness_rating(parse_sql(sql))


class TestLevels:
    def test_trivial_is_easy(self):
        assert level("SELECT a FROM t") is Hardness.EASY

    def test_single_where_is_easy(self):
        assert level("SELECT a FROM t WHERE b = 1") is Hardness.EASY

    def test_join_plus_where_is_medium(self):
        assert (
            level("SELECT t.a FROM t JOIN u ON t.id = u.tid WHERE u.b = 1")
            is Hardness.MEDIUM
        )

    def test_set_op_is_hard_or_extra(self):
        result = level("SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 1")
        assert result in (Hardness.HARD, Hardness.EXTRA)

    def test_kitchen_sink_is_extra(self):
        sql = (
            "SELECT a, count(*) FROM t JOIN u ON t.id = u.tid "
            "WHERE b = 1 OR c = 2 GROUP BY a ORDER BY count(*) DESC LIMIT 1"
        )
        assert level(sql) is Hardness.EXTRA


class TestRatingAnchors:
    """The paper's worked rating examples (DESIGN.md §4 calibration)."""

    def test_base_rating(self):
        assert rating("SELECT a FROM t") == 100

    def test_where_only_rates_200(self):
        # Fig. 4: the 'where'-conditioned candidate carries rating 200.
        assert rating("SELECT a FROM t WHERE b = 'x'") == 200

    def test_project_except_rates_400(self):
        # Fig. 1/Section III-A: PROJECT + EXCEPT = 100 base + 300 EXCEPT.
        sql = (
            "SELECT countrycode FROM cl EXCEPT "
            "SELECT countrycode FROM cl WHERE language = 'English'"
        )
        # Our calibration: base 100 + setop 300 + inner where 100 = 500.
        assert rating(sql) == 500

    def test_where_subquery_rates_450(self):
        # Section IV-E: oracle metadata (450, where, subquery).
        sql = "SELECT a, b FROM t WHERE id NOT IN (SELECT tid FROM u)"
        assert rating(sql) == 450


class TestRatingProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rating_positive_and_quantised(self, seed):
        domain = sorted(SPIDER_DOMAINS)[seed % len(SPIDER_DOMAINS)]
        db = build_domain(SPIDER_DOMAINS[domain], seed=4)
        sampler = QuerySampler(db, np.random.default_rng(seed))
        value = hardness_rating(sampler.sample())
        assert value >= 100
        assert value % 25 == 0

    def test_adding_clause_never_lowers_rating(self):
        base = SelectQuery(
            select=(ColumnRef(column="a"),),
            from_=FromClause(tables=("t",)),
        )
        with_where = SelectQuery(
            select=base.select,
            from_=base.from_,
            where=Condition(
                predicates=(
                    Predicate(
                        left=ColumnRef(column="b"), op="=", right=Literal(1)
                    ),
                )
            ),
        )
        with_order = SelectQuery(
            select=base.select,
            from_=base.from_,
            order_by=(OrderItem(expr=ColumnRef(column="b")),),
        )
        assert hardness_rating(with_where) > hardness_rating(base)
        assert hardness_rating(with_order) > hardness_rating(base)

    def test_more_predicates_rate_higher(self):
        one = rating("SELECT a FROM t WHERE b = 1")
        two = rating("SELECT a FROM t WHERE b = 1 AND c = 2")
        assert two > one
