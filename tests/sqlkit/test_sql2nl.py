"""Rule-based SQL-to-NL template tests (Table 2)."""

from repro.sqlkit.parser import parse_sql
from repro.sqlkit.sql2nl import (
    IdentifierVocabulary,
    describe_expr,
    describe_predicate,
    describe_query,
    describe_unit,
    unit_phrases,
)
from repro.sqlkit.units import decompose


def phrases(sql: str) -> list[str]:
    return unit_phrases(parse_sql(sql))


class TestExpressions:
    def test_column_prettified(self):
        query = parse_sql("SELECT pet_age FROM pets")
        assert describe_expr(query.select[0]) == "pet age"

    def test_count_star(self):
        query = parse_sql("SELECT count(*) FROM t")
        assert describe_expr(query.select[0]) == "the number of records"

    def test_aggregates(self):
        query = parse_sql("SELECT avg(age), max(bonus) FROM t")
        assert describe_expr(query.select[0]) == "the average age"
        assert describe_expr(query.select[1]) == "the maximum bonus"


class TestPredicates:
    def test_equality(self):
        query = parse_sql("SELECT a FROM t WHERE name = 'John'")
        text = describe_predicate(query.where.predicates[0])
        assert text == "whose name is John"

    def test_comparison(self):
        query = parse_sql("SELECT a FROM t WHERE age > 3")
        assert "greater than 3" in describe_predicate(
            query.where.predicates[0]
        )

    def test_negated_in_subquery(self):
        query = parse_sql(
            "SELECT a FROM t WHERE id NOT IN (SELECT tid FROM u)"
        )
        text = describe_predicate(query.where.predicates[0])
        assert "not" in text


class TestUnits:
    def test_projection_template(self):
        first = decompose(parse_sql("SELECT employee_name FROM employee"))[0]
        assert describe_unit(first) == "find employee name"

    def test_join_template(self):
        units = decompose(
            parse_sql("SELECT a FROM employee JOIN evaluation ON id = eid")
        )
        join_unit = [u for u in units if u.unit_type.value == "join"][0]
        assert describe_unit(join_unit) == "the employee with evaluation"

    def test_sort_highest_one(self):
        units = decompose(
            parse_sql("SELECT a FROM t ORDER BY bonus DESC LIMIT 1")
        )
        assert describe_unit(units[-1]) == "the highest bonus one"

    def test_group_template(self):
        units = decompose(parse_sql("SELECT a, count(*) FROM t GROUP BY a"))
        group_unit = [u for u in units if u.unit_type.value == "group"][0]
        assert describe_unit(group_unit) == "for each a"


class TestQueryDescriptions:
    def test_full_sentence(self):
        text = describe_query(
            parse_sql(
                "SELECT lname FROM student JOIN has_pet ON a = b "
                "WHERE pet_age = 3"
            )
        )
        assert "find lname" in text
        assert "whose pet age is 3" in text

    def test_phrase_list_matches_units(self):
        sql = "SELECT a FROM t WHERE b = 1 ORDER BY c LIMIT 2"
        assert len(phrases(sql)) == len(decompose(parse_sql(sql)))

    def test_schema_vocabulary_used(self, world_db):
        schema = world_db.schema
        text = describe_query(
            parse_sql("SELECT countrycode FROM countrylanguage"), schema
        )
        assert "countrycode" in text or "country" in text

    def test_identifier_vocabulary_fallback(self):
        vocab = IdentifierVocabulary()
        assert vocab.table_phrase("car_makers") == "car makers"
        assert vocab.column_phrase("pet_age") == "pet age"
