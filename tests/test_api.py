"""Top-level package API tests."""

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_lazy_metasql(self):
        from repro.core.pipeline import MetaSQL

        assert repro.MetaSQL is MetaSQL

    def test_lazy_metadata(self):
        from repro.core.metadata import QueryMetadata

        assert repro.QueryMetadata is QueryMetadata

    def test_unknown_attribute(self):
        import pytest

        with pytest.raises(AttributeError):
            repro.nonexistent_attribute
