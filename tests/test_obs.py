"""Observability layer tests: tracing, metrics, exposition, journal.

Covers the obs primitives in isolation (deterministic clocks, golden-file
Prometheus rendering, thread hammers) and threaded through the stack: a
real trained pipeline under injected faults must still produce a full
span tree, populated histograms, and a replayable journal.
"""

from __future__ import annotations

import json
import math
import pathlib
import threading

import numpy as np
import pytest

from repro.core.resilience import FAULTS, FaultRecord, TranslationReport
from repro.eval import aggregate_journal, evaluate_metasql
from repro.obs import (
    DEFAULT_BUCKETS,
    FlightRecorder,
    Histogram,
    Journal,
    MetricError,
    MetricsRegistry,
    SloEngine,
    SloSpec,
    Tracer,
    current_tracer,
    get_registry,
    iter_journal,
    maybe_span,
    read_journal,
    registry_scope,
    trace_scope,
)
from repro.serve import HealthSnapshot, ServiceConfig, TranslationService

pytestmark = pytest.mark.obs

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


class TickClock:
    """Advances one second per read: deterministic span durations."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


# ----------------------------------------------------------------------
# Tracing.


class TestTracer:
    def test_nested_spans_form_a_tree_with_deterministic_times(self):
        tracer = Tracer(clock=TickClock())  # origin reads t=1
        with tracer.span("outer") as outer:  # opens t=2
            with tracer.span("inner", k=7) as inner:  # opens t=3
                assert tracer.active is inner
            # inner closed at t=4
        # outer closed at t=5
        assert tracer.active is None
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert outer.offset == 1.0 and outer.duration == 3.0
        assert inner.offset == 2.0 and inner.duration == 1.0
        assert inner.attributes == {"k": 7}
        assert outer.find("inner") is inner
        assert [s.name for s in outer.walk()] == ["outer", "inner"]

    def test_span_records_error_status_and_reraises(self):
        tracer = Tracer(clock=TickClock())
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.finished
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        exported = span.as_dict()
        assert exported["status"] == "error"
        assert exported["error"] == "ValueError: boom"

    def test_as_dict_round_trips_through_json(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("root", stage="demo"):
            with tracer.span("leaf"):
                pass
        exported = json.loads(json.dumps(tracer.export()))
        assert exported[0]["name"] == "root"
        assert exported[0]["attributes"] == {"stage": "demo"}
        assert exported[0]["children"][0]["name"] == "leaf"

    def test_ambient_tracer_scope(self):
        assert current_tracer() is None
        with maybe_span("ignored") as span:
            assert span is None  # no tracer installed: no-op
        tracer = Tracer()
        with trace_scope(tracer):
            assert current_tracer() is tracer
            with maybe_span("seen") as span:
                assert span is not None
        assert current_tracer() is None
        assert tracer.roots[0].name == "seen"


# ----------------------------------------------------------------------
# Metrics: instruments.


class TestCounter:
    def test_inc_and_reject_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        plain = registry.counter("hammer_total")
        labelled = registry.counter("hammer_by_worker_total", labelnames=("w",))
        threads, per_thread = 8, 5_000

        def hammer(worker: int) -> None:
            mine = labelled.labels(w=str(worker % 2))
            for _ in range(per_thread):
                plain.inc()
                mine.inc()

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert plain.value == threads * per_thread
        total = sum(
            labelled.labels(w=str(w)).value for w in range(2)
        )
        assert total == threads * per_thread

    def test_label_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("labelled_total", labelnames=("stage",))
        with pytest.raises(MetricError, match="takes labels"):
            family.labels(wrong="x")
        family.labels(stage="s1").inc()
        assert family.labels(stage="s1").value == 1


class TestHistogram:
    def test_bucket_edges_are_le_inclusive(self):
        h = Histogram("h_seconds", buckets=(0.1, 0.2, 0.4))
        h.observe(0.05)  # -> le=0.1
        h.observe(0.2)  # exactly a bound -> le=0.2 (inclusive)
        h.observe(0.2000001)  # just above -> le=0.4
        h.observe(5.0)  # -> +Inf
        assert h.bucket_counts.tolist() == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(5.4500001)

    def test_default_buckets_are_log_scaled_and_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
        ratios = np.diff(np.log10(np.asarray(DEFAULT_BUCKETS)))
        assert np.allclose(ratios, 0.25, atol=1e-6)  # four per decade
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-4)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(MetricError, match="sorted and unique"):
            Histogram("bad_seconds", buckets=(0.2, 0.1))
        with pytest.raises(MetricError, match="sorted and unique"):
            Histogram("bad_seconds", buckets=(0.1, 0.1))

    def test_quantiles_interpolate_and_clamp(self):
        h = Histogram("q_seconds", buckets=(1.0, 2.0, 4.0))
        assert math.isnan(h.quantile(0.5))
        for value in (0.5, 1.5, 1.5, 3.0):
            h.observe(value)
        assert h.quantile(0.0) == pytest.approx(0.5)  # clamped to min
        assert h.quantile(1.0) == pytest.approx(3.0)  # clamped to max
        median = h.quantile(0.5)
        assert 1.0 <= median <= 2.0  # inside the containing bucket
        with pytest.raises(MetricError, match="quantile"):
            h.quantile(1.5)

    def test_quantile_in_inf_bucket_falls_back_to_max(self):
        h = Histogram("inf_seconds", buckets=(1.0,))
        h.observe(10.0)
        h.observe(20.0)
        assert h.quantile(0.99) == 20.0

    def test_quantile_in_first_bucket_stays_in_observed_range(self):
        # All observations land far below the first bound: interpolating
        # from an imaginary 0.0 lower edge used to report values ~100x
        # larger than anything observed.
        h = Histogram("first_seconds", buckets=(1.0, 2.0))
        for value in (0.001, 0.002, 0.003):
            h.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert 0.001 <= h.quantile(q) <= 0.003

    def test_quantile_first_bucket_handles_negative_observations(self):
        h = Histogram("neg_units", buckets=(1.0,))
        h.observe(-5.0)
        h.observe(-3.0)
        assert -5.0 <= h.quantile(0.5) <= -3.0

    def test_quantile_single_observation_is_exact(self):
        h = Histogram("one_seconds", buckets=(1.0, 2.0))
        h.observe(0.25)
        assert h.quantile(0.0) == pytest.approx(0.25)
        assert h.quantile(0.5) == pytest.approx(0.25)
        assert h.quantile(1.0) == pytest.approx(0.25)


class TestRegistry:
    def test_get_or_create_deduplicates(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")
        assert registry.names() == ["x_total"]

    def test_kind_and_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricError, match="already registered as"):
            registry.gauge("x_total")
        registry.counter("y_total", labelnames=("a",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("y_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "1leading", "has space", "dash-ed"):
            with pytest.raises(MetricError, match="invalid metric name"):
                registry.counter(bad)

    def test_registry_scope_isolates_and_falls_back(self):
        ambient = get_registry()
        isolated = MetricsRegistry()
        with registry_scope(isolated):
            assert get_registry() is isolated
            get_registry().counter("scoped_total").inc()
        assert get_registry() is ambient
        assert ambient.get("scoped_total") is None
        assert isolated.counter("scoped_total").value == 1


# ----------------------------------------------------------------------
# Prometheus exposition (golden file).


def _demo_registry() -> MetricsRegistry:
    """A registry with one instrument of each kind, fixed values.

    Also exercises the PR-8 SLO engine and flight recorder against the
    same registry (fixed clocks, pinned timestamps) so the golden file
    covers the ``metasql_slo_*`` / ``metasql_recorder_*`` families.
    """
    registry = MetricsRegistry()
    requests = registry.counter(
        "demo_requests_total", "Total demo requests.", labelnames=("outcome",)
    )
    requests.labels(outcome="completed").inc(3)
    requests.labels(outcome="failed").inc()
    registry.gauge("demo_queue_depth", "Jobs waiting in the queue.").set(2)
    latency = registry.histogram(
        "demo_latency_seconds",
        "Demo request latency.",
        buckets=(0.5, 1.0),
    )
    for value in (0.25, 0.5, 0.75, 2.0):
        latency.observe(value)
    engine = SloEngine(
        (SloSpec("demo", indicator="degraded", objective=0.95),),
        clock=lambda: 0.0,
        registry=registry,
    )
    engine.observe({"degraded": False}, ts=1.0)
    engine.observe({"degraded": True}, ts=2.0)  # burn 10.0: ticket fires
    engine.observe({"degraded": True}, ts=3.0)  # burn 13.3: page still quiet
    engine.observe({"degraded": True}, ts=4.0)  # burn 15.0: page fires
    recorder = FlightRecorder(
        capacity=2, clock=lambda: 5.0, registry=registry
    )
    recorder.consider(
        {"tenant": "default", "faults": [{"stage": "generate"}]}
    )
    recorder.consider({"tenant": "default", "latency_s": 0.01})
    return registry


def test_prometheus_rendering_matches_golden_file():
    rendered = _demo_registry().render_prometheus()
    golden = (GOLDEN / "metrics.prom").read_text()
    assert rendered == golden


def test_prometheus_rendering_is_parseable():
    for line in _demo_registry().render_prometheus().splitlines():
        if line.startswith("#"):
            kind = line.split()
            assert kind[1] in ("HELP", "TYPE")
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # every sample value parses as a number
        metric = name_part.split("{", 1)[0]
        assert metric and all(c.isalnum() or c in "_:" for c in metric)


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("esc_total", labelnames=("q",)).labels(
        q='say "hi"\nback\\slash'
    ).inc()
    rendered = registry.render_prometheus()
    assert '\\"hi\\"' in rendered
    assert "\\n" in rendered and "\\\\slash" in rendered


def test_registry_as_dict_is_json_ready():
    snapshot = json.loads(json.dumps(_demo_registry().as_dict()))
    histogram = snapshot["demo_latency_seconds"]["series"][0]
    assert histogram["count"] == 4
    assert histogram["buckets"]["+Inf"] == 4
    assert snapshot["demo_requests_total"]["series"][0]["labels"] == {
        "outcome": "completed"
    }


# ----------------------------------------------------------------------
# Journal: durability and replay.


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        journal = Journal(tmp_path / "events.jsonl", clock=lambda: 123.0)
        journal.append({"event": "a", "n": 1})
        journal.append({"event": "b"}, stamp=False)
        journal.close()
        records = read_journal(journal.path)
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[0]["ts"] == 123.0
        assert "ts" not in records[1]

    def test_replay_skips_torn_line_from_crash_mid_write(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Journal(path) as journal:
            journal.append({"event": "before"})
        # Simulate a crash mid-write: a partial, unterminated record.
        with open(path, "ab") as handle:
            handle.write(b'{"event":"torn","half')
        records = read_journal(path)
        assert [r["event"] for r in records] == ["before"]

    def test_reopen_repairs_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Journal(path) as journal:
            journal.append({"event": "before"})
        with open(path, "ab") as handle:
            handle.write(b'{"event":"torn"')
        # A new writer (post-crash restart) must not concatenate onto the
        # torn prefix: the tail is newline-terminated on reopen.
        with Journal(path) as journal:
            journal.append({"event": "after"})
        records = read_journal(path)
        assert [r["event"] for r in records] == ["before", "after"]
        assert path.read_bytes().count(b"\n") == 3

    def test_concurrent_appends_all_survive(self, tmp_path):
        journal = Journal(tmp_path / "events.jsonl", fsync=False)
        threads, per_thread = 4, 50

        def writer(worker: int) -> None:
            for i in range(per_thread):
                journal.append({"w": worker, "i": i})

        pool = [
            threading.Thread(target=writer, args=(w,)) for w in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        journal.close()
        records = read_journal(journal.path)
        assert len(records) == threads * per_thread
        assert {(r["w"], r["i"]) for r in records} == {
            (w, i) for w in range(threads) for i in range(per_thread)
        }


class TestJournalFollow:
    """``iter_journal(follow=True)``: bounded tail-follow semantics."""

    def test_unbounded_follow_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="bound"):
            next(iter_journal(tmp_path / "x.jsonl", follow=True))

    def test_follow_yields_records_appended_between_polls(self, tmp_path):
        path = tmp_path / "follow.jsonl"
        journal = Journal(path, fsync=False)
        journal.append({"event": "a"})
        pending = iter([{"event": "b"}, {"event": "c"}])

        def writer_sleep(_seconds: float) -> None:
            record = next(pending, None)
            if record is not None:
                journal.append(record)

        records = list(
            iter_journal(
                path,
                follow=True,
                max_records=3,
                sleep=writer_sleep,
                clock=TickClock(),
            )
        )
        journal.close()
        assert [r["event"] for r in records] == ["a", "b", "c"]

    def test_follow_tolerates_a_missing_file(self, tmp_path):
        path = tmp_path / "later.jsonl"

        def create_on_sleep(_seconds: float) -> None:
            with Journal(path, fsync=False) as journal:
                journal.append({"event": "born"})

        records = list(
            iter_journal(
                path, follow=True, max_records=1, sleep=create_on_sleep
            )
        )
        assert [r["event"] for r in records] == ["born"]

    def test_follow_holds_partial_lines_and_skips_corrupt_ones(
        self, tmp_path
    ):
        path = tmp_path / "torn.jsonl"
        path.write_bytes(b'{"event":"a"}\nnot json\n{"ev')

        def finish_line(_seconds: float) -> None:
            with open(path, "ab") as handle:
                handle.write(b'ent":"b"}\n')

        records = list(
            iter_journal(
                path, follow=True, max_records=2, sleep=finish_line
            )
        )
        # The torn prefix was never yielded half-parsed: it surfaced as
        # one whole record once its newline landed; the corrupt line was
        # skipped as in plain replay.
        assert [r["event"] for r in records] == ["a", "b"]

    def test_follow_times_out_with_no_writer(self, tmp_path):
        records = list(
            iter_journal(
                tmp_path / "never.jsonl",
                follow=True,
                timeout=3.0,
                sleep=lambda _s: None,
                clock=TickClock(),
            )
        )
        assert records == []

    def test_non_follow_honours_max_records(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        with Journal(path, fsync=False) as journal:
            for index in range(5):
                journal.append({"i": index})
        records = list(iter_journal(path, max_records=2))
        assert [r["i"] for r in records] == [0, 1]


# ----------------------------------------------------------------------
# Serialization round-trips.


def test_translation_report_round_trips_through_json():
    report = TranslationReport(question="q")
    report.record(
        FaultRecord(
            stage="generate",
            error_type="ValueError",
            error="boom",
            fallback="skip",
            transient=True,
        )
    )
    report.deadline_budget = 1.5
    report.deadline_stage = "stage2"
    report.trace = {"name": "translate", "duration": 0.5, "children": []}
    revived = TranslationReport.from_dict(
        json.loads(json.dumps(report.as_dict()))
    )
    assert revived.as_dict() == report.as_dict()
    assert revived.faults[0].stage == "generate"
    assert revived.faults[0].transient is True
    assert revived.degraded and revived.deadline_expired


def test_health_snapshot_round_trips_through_json():
    snapshot = HealthSnapshot(
        accepting=True,
        queue_depth=2,
        queue_capacity=16,
        workers=2,
        in_flight=1,
        completed=10,
        rejected=4,
        retried=3,
        failed=1,
        degraded_rate=0.25,
        deadline_expired=2,
        breakers={"stage1": "open"},
        uptime_seconds=12.5,
    )
    data = json.loads(json.dumps(snapshot.as_dict()))
    assert data["ready"] is snapshot.ready
    revived = HealthSnapshot.from_dict(data)
    assert revived == snapshot


# ----------------------------------------------------------------------
# Pipeline integration: span trees and metrics from real translations.


STAGES = ("classify", "generate", "stage1", "stage2")


def _stage_children(trace: dict) -> dict[str, dict]:
    return {child["name"]: child for child in trace.get("children", ())}


class TestPipelineTracing:
    def test_translate_attaches_full_span_tree(self, trained_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        registry = MetricsRegistry()
        with registry_scope(registry):
            outcome = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        trace = outcome.report.trace
        assert trace is not None and trace["name"] == "translate"
        children = _stage_children(trace)
        assert set(STAGES) <= set(children)
        # Stage spans run strictly in pipeline order, inside the root.
        offsets = [children[name]["offset"] for name in STAGES]
        assert offsets == sorted(offsets)
        for name in STAGES:
            child = children[name]
            assert child["duration"] >= 0.0
            assert child["offset"] + child["duration"] <= trace["duration"] + 1e-6
        # The generate stage carries per-condition sub-spans.
        generate = children["generate"]
        sub = [c["name"] for c in generate.get("children", ())]
        assert any(name.startswith("generate.") for name in sub)
        # Stage latencies landed in the scoped registry.
        histogram = registry.get("metasql_stage_latency_seconds")
        assert histogram is not None
        for name in STAGES:
            assert histogram.labels(stage=name).count >= 1
        assert registry.counter("metasql_candidates_generated_total").value > 0
        assert outcome.report.stage_durations().keys() >= set(STAGES)

    def test_span_tree_survives_injected_stage_fault(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        registry = MetricsRegistry()
        with registry_scope(registry), FAULTS.inject("stage1.rank"):
            outcome = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        report = outcome.report
        assert report.degraded
        assert any(fault.stage == "stage1" for fault in report.faults)
        # The trace still covers every stage: degradation, not truncation.
        children = _stage_children(report.trace)
        assert set(STAGES) <= set(children)
        fired = registry.get("metasql_failpoint_triggered_total")
        assert fired.labels(site="stage1.rank").value == 1
        faults = registry.get("metasql_faults_total")
        assert faults is not None
        total = sum(
            child._value for key, child in faults._sorted_children()
        )
        assert total >= 1
        assert registry.counter("metasql_degraded_translations_total").value == 1

    def test_ambient_tracer_is_reused_not_replaced(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        tracer = Tracer()
        with trace_scope(tracer), tracer.span("caller"):
            trained_pipeline.translate_ranked_report(example.question, db)
        root = tracer.roots[0]
        assert root.name == "caller"
        assert root.find("translate") is not None
        assert root.find("stage2") is not None


# ----------------------------------------------------------------------
# Service integration: the acceptance-criteria path.


class TestServiceObservability:
    def test_full_translation_produces_spans_metrics_and_journal(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        registry = MetricsRegistry()
        journal_path = tmp_path / "serve.jsonl"
        with TranslationService(
            trained_pipeline,
            ServiceConfig(workers=1, journal_path=journal_path),
            registry=registry,
        ) as service:
            result = service.translate(example.question, db, timeout=30)
            rendered = service.metrics()
            health = service.health()

        # (1) The span tree rode back on the report: >=4 stage spans.
        children = _stage_children(result.report.trace)
        assert set(STAGES) <= set(children)

        # (2) Non-zero stage-latency histograms and queue metrics.
        stage_latency = registry.get("metasql_stage_latency_seconds")
        for name in STAGES:
            assert stage_latency.labels(stage=name).count >= 1
        assert registry.get("serve_e2e_latency_seconds").labels(
            tenant="default"
        ).count == 1
        assert registry.get("serve_queue_wait_seconds").labels(
            tenant="default"
        ).count == 1
        assert registry.get("serve_requests_total").labels(
            outcome="completed", tenant="default"
        ).value == 1

        # (3) The exposition parses and carries both layers' series.
        assert (
            'serve_e2e_latency_seconds_count{tenant="default"} 1' in rendered
        )
        assert 'metasql_stage_latency_seconds_bucket{stage="generate"' in rendered
        for line in rendered.splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

        # (4) The journal recorded the request with per-stage latencies.
        records = read_journal(journal_path)
        assert len(records) == 1
        record = records[0]
        assert record["event"] == "translate"
        assert record["ok"] is True
        assert set(STAGES) <= set(record["stages"])
        assert health.uptime_seconds > 0.0

    def test_metrics_exposes_live_queue_gauges(self, tmp_path):
        from tests.test_serve import StubPipeline

        registry = MetricsRegistry()
        with TranslationService(
            StubPipeline(),
            ServiceConfig(workers=1),
            registry=registry,
        ) as service:
            from repro.schema.database import Database
            from repro.schema.schema import Column, Schema, Table

            db = Database(
                Schema(db_id="d", tables=(Table("t", (Column("c"),)),))
            )
            service.translate("q", db, timeout=10)
            rendered = service.metrics()
        assert "serve_queue_depth 0" in rendered
        assert "serve_in_flight 0" in rendered
        assert (
            'serve_requests_total{outcome="completed",tenant="default"} 1'
            in rendered
        )


# ----------------------------------------------------------------------
# Eval journal + offline aggregation.


class TestEvalJournal:
    def test_evaluate_writes_journal_and_aggregation_folds_it(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        path = tmp_path / "eval.jsonl"
        result = evaluate_metasql(
            trained_pipeline, tiny_benchmark.dev, limit=4, journal=path
        )
        records = read_journal(path)
        assert len(records) == len(result.records) == 4
        for record in records:
            assert record["event"] == "eval"
            assert set(STAGES) <= set(record["stages"])
            assert record["hardness"] in ("easy", "medium", "hard", "extra")

        summary = aggregate_journal(path)
        assert summary.total == 4 and summary.eval_records == 4
        assert set(summary.stage_latencies) >= set(STAGES)
        total_em = sum(b.em_hits for b in summary.by_hardness.values())
        assert total_em == sum(r.em for r in result.records)
        assert sum(
            b.total for b in summary.by_hardness.values()
        ) == 4
        snapshot = json.loads(json.dumps(summary.as_dict()))
        assert snapshot["latency"]["count"] == 4
        rendered = summary.render()
        assert "by hardness:" in rendered and "by stage:" in rendered

    def test_aggregation_tolerates_mixed_and_legacy_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with Journal(path, fsync=False) as journal:
            journal.append(
                {
                    "event": "eval",
                    "hardness": "easy",
                    "em": True,
                    "ex": True,
                    "latency_s": 0.01,
                    "stages": {"generate": 0.008},
                }
            )
            journal.append(
                {
                    "event": "translate",
                    "ok": True,
                    "degraded": True,
                    "faults": [{"stage": "stage1", "fallback": "order"}],
                    "latency_s": 0.02,
                    "stages": {"generate": 0.015},
                }
            )
            journal.append({"event": "eval"})  # legacy: missing keys
        summary = aggregate_journal(path)
        assert summary.total == 3
        assert summary.eval_records == 2 and summary.serve_records == 1
        assert summary.degraded == 1
        assert summary.fault_counts == {"stage1": 1}
        assert summary.by_hardness["easy"].em == 1.0
        assert summary.by_hardness["unknown"].total == 1
        assert len(summary.stage_latencies["generate"]) == 2
        only_eval = aggregate_journal(path, events=("eval",))
        assert only_eval.total == 2 and only_eval.serve_records == 0
