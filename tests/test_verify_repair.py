"""Execution-guided verification and bounded self-repair tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import QueryMetadata
from repro.core.pipeline import MetaSQL, RankedTranslation
from repro.core.repair import (
    RepairConfig,
    diagnose,
    perturb_compositions,
    run_repair,
)
from repro.core.resilience import (
    FAULTS,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    TranslationReport,
)
from repro.core.verify import (
    CandidateVerdict,
    VerifyConfig,
    VerifyResult,
    verify_candidates,
)
from repro.eval.journal_analysis import aggregate_journal
from repro.obs.journal import Journal
from repro.schema.database import Database
from repro.schema.executor import ExecutionBudget, budget_scope, execute
from repro.schema.schema import NUMBER, Column, Schema, Table
from repro.sqlkit.errors import ExecutionBudgetError
from repro.sqlkit.parser import parse_sql

pytestmark = pytest.mark.robustness

GOLDEN = "tests/golden/journal_summary.txt"


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


@pytest.fixture()
def verify_db():
    schema = Schema(
        db_id="vtest",
        tables=(Table("t", (Column("a"), Column("n", NUMBER))),),
    )
    db = Database(schema)
    db.insert_many("t", [{"a": "x", "n": 1}, {"a": "y", "n": 2}])
    return db


OK_SQL = "SELECT a FROM t"
EMPTY_SQL = "SELECT a FROM t WHERE n > 999"
ERROR_SQL = "SELECT bogus FROM t"


def _queries(*sqls):
    return [parse_sql(sql) for sql in sqls]


# ----------------------------------------------------------------------
# Verify stage: outcome taxonomy and the demotion policy matrix.


class TestVerifyCandidates:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="unknown verify policy"):
            VerifyConfig(policy="bogus")

    def test_outcomes_ok_empty_error(self, verify_db):
        result = verify_candidates(
            _queries(ERROR_SQL, OK_SQL, EMPTY_SQL),
            verify_db,
            VerifyConfig(top_k=3),
        )
        assert [v.outcome for v in result.verdicts] == [
            "error", "ok", "empty",
        ]
        assert result.checked == 3
        assert result.verdicts[1].rows == 2

    def test_demote_reorders_passing_first(self, verify_db):
        result = verify_candidates(
            _queries(ERROR_SQL, OK_SQL, EMPTY_SQL),
            verify_db,
            VerifyConfig(policy="demote", top_k=3, demote_empty=True),
        )
        # Passing, then empty failures, then hard failures.
        assert result.order == [1, 2, 0]
        assert result.demoted == 2

    def test_demote_empty_off_by_default(self, verify_db):
        result = verify_candidates(
            _queries(ERROR_SQL, OK_SQL, EMPTY_SQL),
            verify_db,
            VerifyConfig(policy="demote", top_k=3),
        )
        assert result.order == [1, 2, 0]
        assert result.demoted == 1  # only the hard failure

    def test_prune_drops_failing(self, verify_db):
        result = verify_candidates(
            _queries(ERROR_SQL, OK_SQL, EMPTY_SQL),
            verify_db,
            VerifyConfig(policy="prune", top_k=3, demote_empty=True),
        )
        assert result.order == [1]
        assert result.demoted == 2

    def test_prune_fails_open_when_nothing_survives(self, verify_db):
        result = verify_candidates(
            _queries(ERROR_SQL, ERROR_SQL),
            verify_db,
            VerifyConfig(policy="prune", top_k=2),
        )
        assert result.order == [0, 1]
        assert result.demoted == 0

    def test_off_is_identity(self, verify_db):
        config = VerifyConfig(policy="off")
        assert not config.enabled
        result = verify_candidates(
            _queries(ERROR_SQL, OK_SQL, EMPTY_SQL), verify_db, config
        )
        assert result.order == [0, 1, 2]
        assert result.demoted == 0

    def test_beyond_top_k_is_unverified_and_keeps_rank(self, verify_db):
        result = verify_candidates(
            _queries(ERROR_SQL, EMPTY_SQL, OK_SQL),
            verify_db,
            VerifyConfig(policy="demote", top_k=1),
        )
        # Only candidate 0 executed; 1 and 2 are presumed innocent.
        assert [v.outcome for v in result.verdicts] == ["error"]
        assert result.order == [1, 2, 0]
        assert result.checked == 1

    def test_budget_exhaustion_marks_budget_then_skipped(self, verify_db):
        result = verify_candidates(
            _queries(OK_SQL, OK_SQL, OK_SQL),
            verify_db,
            VerifyConfig(top_k=3, budget_steps=1, budget_rows=None),
        )
        assert result.verdicts[0].outcome == "budget"
        assert result.verdicts[0].detail == "ExecutionBudgetError"
        assert [v.outcome for v in result.verdicts[1:]] == [
            "skipped", "skipped",
        ]
        assert result.budget_remaining == 0

    def test_time_cap_expiry_skips_everything(self, verify_db):
        ticks = iter(range(0, 1000, 100))
        config = VerifyConfig(
            top_k=3, time_cap=0.5, clock=lambda: float(next(ticks))
        )
        result = verify_candidates(
            _queries(OK_SQL, OK_SQL), verify_db, config
        )
        assert [v.outcome for v in result.verdicts] == [
            "skipped", "skipped",
        ]
        assert result.order == [0, 1]
        assert result.checked == 0

    def test_expired_request_deadline_skips(self, verify_db):
        deadline = Deadline(1.0, clock=iter([0.0, 100.0, 100.0]).__next__)
        result = verify_candidates(
            _queries(OK_SQL),
            verify_db,
            VerifyConfig(top_k=1, time_cap=None),
            deadline=deadline,
        )
        assert [v.outcome for v in result.verdicts] == ["skipped"]

    def test_top1_failed_only_for_executed_hard_failures(self, verify_db):
        failing = verify_candidates(
            _queries(ERROR_SQL, ERROR_SQL),
            verify_db,
            VerifyConfig(top_k=2),
        )
        assert failing.top1_failed
        empty = verify_candidates(
            _queries(EMPTY_SQL), verify_db, VerifyConfig(top_k=1)
        )
        assert not empty.top1_failed  # empty demotes but never repairs
        passing = verify_candidates(
            _queries(ERROR_SQL, OK_SQL), verify_db, VerifyConfig(top_k=2)
        )
        assert not passing.top1_failed

    def test_report_round_trips_verify_fields(self):
        report = TranslationReport(question="q")
        report.record_verify({"ok": 2, "error": 1}, demoted=1)
        report.repair_attempts = 2
        report.repair_succeeded = True
        restored = TranslationReport.from_dict(report.as_dict())
        assert restored.verify_demoted == 1
        assert restored.verify_outcomes == {"error": 1, "ok": 2}
        assert restored.repair_attempts == 2
        assert restored.repair_succeeded is True


# ----------------------------------------------------------------------
# Satellite 2: ambient execution budget ergonomics.


class TestAmbientBudget:
    def test_repeated_executes_charge_cumulatively(self, verify_db):
        query = parse_sql(OK_SQL)
        budget = ExecutionBudget(max_steps=10_000)
        with budget_scope(budget):
            execute(query, verify_db)
            first = budget.steps
            assert first > 0
            assert budget.remaining() == 10_000 - first
            execute(query, verify_db)
            assert budget.steps == 2 * first
            assert budget.remaining() == 10_000 - 2 * first
        assert not budget.exhausted

    def test_exhaustion_across_calls(self, verify_db):
        query = parse_sql(OK_SQL)
        probe = ExecutionBudget(max_steps=None)
        with budget_scope(probe):
            execute(query, verify_db)
        per_call = probe.steps
        budget = ExecutionBudget(max_steps=per_call + per_call // 2)
        with budget_scope(budget):
            execute(query, verify_db)
            with pytest.raises(ExecutionBudgetError):
                execute(query, verify_db)
        assert budget.exhausted
        assert budget.remaining() == 0

    def test_unlimited_budget_remaining_is_none(self):
        budget = ExecutionBudget(max_steps=None)
        assert budget.remaining() is None
        assert not budget.exhausted


# ----------------------------------------------------------------------
# Repair: diagnostics, perturbation, bounded loop (stub pipeline).


def _ranked(db_sql=OK_SQL, metadata=None):
    return RankedTranslation(
        query=parse_sql(db_sql),
        stage1_score=1.0,
        stage2_score=1.0,
        metadata=metadata,
    )


def _failing_result():
    return VerifyResult(
        verdicts=[
            CandidateVerdict(0, "error", detail="SqlExecutionError")
        ],
        order=[0],
        demoted=0,
        checked=1,
    )


class _StubConfig:
    def __init__(self, repair):
        self.repair = repair
        self.verify = VerifyConfig()
        self.first_stage_top = 10


class _StubComposer:
    def __init__(self, pool):
        self._pool = list(pool)

    def all_compositions(self, limit=None):
        return self._pool[:limit] if limit else list(self._pool)


class _StubGenerator:
    def __init__(self):
        self.calls = 0

    def generate(self, question, db, compositions, report=None):
        self.calls += 1
        return []


class _StubPipeline:
    def __init__(self, repair, pool=(), breaker=None):
        self.config = _StubConfig(repair)
        self.composer = _StubComposer(pool)
        self.generator = _StubGenerator()
        self._breaker_obj = breaker

    def _breaker(self, stage):
        return self._breaker_obj


class _OkGenerator:
    """Yields one candidate decoding to a fixed (working) query."""

    def __init__(self, sql):
        self._sql = sql
        self.calls = 0

    def generate(self, question, db, compositions, report=None):
        from repro.core.generation import GeneratedCandidate

        self.calls += 1
        return [
            GeneratedCandidate(
                query=parse_sql(self._sql),
                score=1.0,
                metadata=compositions[0] if compositions else None,
            )
        ]


class _RepairingPipeline(_StubPipeline):
    """A stub whose regeneration pass produces a passing candidate."""

    def __init__(self, repair, pool, sql=OK_SQL):
        super().__init__(repair, pool)
        self.generator = _OkGenerator(sql)

    def _render_surfaces(self, schema, generated, policy, report):
        return generated, [c.sql_text or "s" for c in generated], 0

    def _stage1_pruned(self, question, surfaces, policy, report):
        return [(i, 1.0) for i in range(len(surfaces))]

    def _stage2_ranked(
        self, question, generated, surfaces, pruned, schema, policy, report
    ):
        return [
            RankedTranslation(
                query=generated[i].query,
                stage1_score=score,
                stage2_score=score,
                metadata=generated[i].metadata,
            )
            for i, score in pruned
        ]


def _pool(count):
    return [
        QueryMetadata(tags=frozenset({"project", f"tag{i}"}), rating=400)
        for i in range(count)
    ]


class TestRepairUnits:
    def test_diagnose_prefers_executor_error_class(self):
        report = TranslationReport(question="q")
        report.lint_codes["SQL003"] = 2
        assert diagnose(report, _failing_result()) == "SqlExecutionError"

    def test_diagnose_empty_then_lint_code(self):
        report = TranslationReport(question="q")
        empty = VerifyResult(
            verdicts=[CandidateVerdict(0, "empty")],
            order=[0],
            demoted=0,
            checked=1,
        )
        assert diagnose(report, empty) == "empty-result"
        report.lint_codes.update({"SQL007": 1, "SQL002": 3})
        unverified = VerifyResult(
            verdicts=[], order=[0], demoted=0, checked=0
        )
        assert diagnose(report, unverified) == "SQL002"

    def test_perturbation_never_repeats_tried_conditions(self):
        meta = QueryMetadata(
            tags=frozenset({"project", "join", "where"}), rating=500
        )
        composer = _StubComposer(_pool(3))
        tried = {(meta.tags, meta.rating)}
        first = perturb_compositions(
            meta, "SqlExecutionError", composer, tried, limit=4
        )
        assert first
        keys = {(m.tags, m.rating) for m in first}
        assert (meta.tags, meta.rating) not in keys
        tried |= keys
        second = perturb_compositions(
            meta, "SqlExecutionError", composer, tried, limit=4
        )
        assert not (keys & {(m.tags, m.rating) for m in second})

    def test_perturbation_drops_diagnostic_tags_first(self):
        meta = QueryMetadata(
            tags=frozenset({"project", "join", "where"}), rating=500
        )
        variants = perturb_compositions(
            meta, "ExecutionBudgetError", _StubComposer([]), set(), limit=1
        )
        assert variants[0].tags == frozenset({"project", "where"})

    def test_repair_counts_attempts_and_keeps_order_on_failure(self):
        pipe = _StubPipeline(RepairConfig(max_attempts=3), pool=_pool(12))
        report = TranslationReport(question="q")
        ranked = [_ranked()]
        out = run_repair(
            pipe,
            "q",
            None,
            ranked,
            _failing_result(),
            set(),
            DegradationPolicy(),
            report,
        )
        assert out == ranked
        assert report.repair_attempts == 3
        assert not report.repair_succeeded

    def test_repair_stops_when_conditions_run_dry(self):
        pipe = _StubPipeline(RepairConfig(max_attempts=10), pool=_pool(2))
        report = TranslationReport(question="q")
        run_repair(
            pipe,
            "q",
            None,
            [_ranked()],
            _failing_result(),
            set(),
            DegradationPolicy(),
            report,
        )
        # Two pool conditions fit in one attempt's batch; the second
        # attempt finds nothing untried and stops early.
        assert report.repair_attempts == 1

    def test_repair_honours_expired_deadline(self):
        pipe = _StubPipeline(RepairConfig(max_attempts=5), pool=_pool(9))
        report = TranslationReport(question="q")
        deadline = Deadline(1.0, clock=iter([0.0] + [100.0] * 20).__next__)
        run_repair(
            pipe,
            "q",
            None,
            [_ranked()],
            _failing_result(),
            set(),
            DegradationPolicy(),
            report,
            deadline=deadline,
        )
        assert report.repair_attempts == 0
        assert pipe.generator.calls == 0

    def test_repair_breaker_open_short_circuits(self):
        breaker = CircuitBreaker(
            "repair", threshold=1, cooldown=1000.0, clock=lambda: 0.0
        )
        breaker.record_failure()
        assert breaker.state == "open"
        pipe = _StubPipeline(
            RepairConfig(max_attempts=5), pool=_pool(30), breaker=breaker
        )
        report = TranslationReport(question="q")
        ranked = [_ranked()]
        out = run_repair(
            pipe,
            "q",
            None,
            ranked,
            _failing_result(),
            set(),
            DegradationPolicy(),
            report,
        )
        assert out == ranked
        assert report.repair_attempts == 1  # refused, then stopped
        assert pipe.generator.calls == 0
        assert "BreakerOpen" in [f.error_type for f in report.faults]

    def test_repair_success_merges_repaired_first(self, verify_db):
        pipe = _RepairingPipeline(
            RepairConfig(max_attempts=2), pool=_pool(4), sql=OK_SQL
        )
        report = TranslationReport(question="q")
        failing = _ranked(ERROR_SQL)
        out = run_repair(
            pipe,
            "q",
            verify_db,
            [failing],
            _failing_result(),
            set(),
            DegradationPolicy(),
            report,
        )
        assert report.repair_succeeded
        assert report.repair_attempts == 1
        assert out[0].sql != failing.sql
        assert out[-1].sql == failing.sql  # original order follows

    @settings(deadline=None, max_examples=30)
    @given(
        max_attempts=st.integers(min_value=0, max_value=4),
        pool=st.integers(min_value=0, max_value=8),
    )
    def test_repair_always_terminates_within_budget(self, max_attempts, pool):
        pipe = _StubPipeline(
            RepairConfig(max_attempts=max_attempts), pool=_pool(pool)
        )
        report = TranslationReport(question="q")
        meta = QueryMetadata(tags=frozenset({"project", "join"}), rating=400)
        out = run_repair(
            pipe,
            "q",
            None,
            [_ranked(metadata=meta)],
            _failing_result(),
            set(),
            DegradationPolicy(),
            report,
        )
        assert isinstance(out, list)
        assert report.repair_attempts <= max_attempts


# ----------------------------------------------------------------------
# Pipeline integration (trained pipeline; configs restored after).


@pytest.fixture()
def guarded_pipeline(trained_pipeline):
    saved_verify = trained_pipeline.config.verify
    saved_repair = trained_pipeline.config.repair
    yield trained_pipeline
    trained_pipeline.config.verify = saved_verify
    trained_pipeline.config.repair = saved_repair
    for stage in ("verify", "repair"):
        breaker = trained_pipeline.breakers.get(stage)
        if breaker is not None:
            breaker.reset()


def _sqls(result):
    return [t.sql for t in result.translations]


class TestPipelineIntegration:
    def test_off_is_bit_identical_to_skipping_the_stage(
        self, guarded_pipeline, tiny_benchmark, monkeypatch
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        guarded_pipeline.config.verify = VerifyConfig(policy="off")
        guarded_pipeline.config.repair = RepairConfig(max_attempts=0)
        disabled = guarded_pipeline.translate_ranked_report(
            example.question, db
        )
        # The pre-verify pipeline, simulated by stubbing the stage out.
        monkeypatch.setattr(
            MetaSQL,
            "_verify_and_repair",
            lambda self, question, db, ranked, *a, **kw: ranked,
        )
        legacy = guarded_pipeline.translate_ranked_report(
            example.question, db
        )
        assert _sqls(disabled) == _sqls(legacy)
        assert [
            (t.stage1_score, t.stage2_score) for t in disabled.translations
        ] == [(t.stage1_score, t.stage2_score) for t in legacy.translations]
        assert disabled.report.verify_outcomes == {}
        assert disabled.report.repair_attempts == 0

    def test_verify_fault_fails_open_to_ranked_order(
        self, guarded_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        guarded_pipeline.config.verify = VerifyConfig(policy="off")
        baseline = guarded_pipeline.translate_ranked_report(
            example.question, db
        )
        guarded_pipeline.config.verify = VerifyConfig()
        with FAULTS.inject("verify.execute", times=1):
            result = guarded_pipeline.translate_ranked_report(
                example.question, db
            )
        assert _sqls(result) == _sqls(baseline)
        fault = next(
            f for f in result.report.faults if f.stage == "verify"
        )
        assert fault.fallback == "keep"
        assert fault.site == "verify.execute"
        assert result.report.degraded
        assert result.report.verify_outcomes == {}

    def test_verify_breaker_open_short_circuits(
        self, guarded_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        breaker = guarded_pipeline.breakers.get("verify")
        for __ in range(20):
            if breaker.state == "open":
                break
            breaker.record_failure()
        assert breaker.state == "open"
        result = guarded_pipeline.translate_ranked_report(
            example.question, db
        )
        assert result.translations
        fault = next(
            f for f in result.report.faults if f.stage == "verify"
        )
        assert fault.error_type == "BreakerOpen"
        assert result.report.verify_outcomes == {}

    def test_verify_outcomes_recorded_on_report(
        self, guarded_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        result = guarded_pipeline.translate_ranked_report(
            example.question, db
        )
        outcomes = result.report.verify_outcomes
        assert outcomes, "verify stage should record outcomes by default"
        assert set(outcomes) <= {"ok", "empty", "error", "budget", "skipped"}
        checked = sum(
            count
            for outcome, count in outcomes.items()
            if outcome != "skipped"
        )
        assert checked <= guarded_pipeline.config.verify.top_k

    def test_injected_execution_errors_trigger_bounded_repair(
        self, guarded_pipeline, tiny_benchmark
    ):
        from repro.sqlkit.errors import SqlExecutionError

        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        guarded_pipeline.config.repair = RepairConfig(max_attempts=2)
        # Check every ranked candidate so the re-emitted top-1 is a
        # *verified* hard failure (an unverified top-1 never repairs).
        guarded_pipeline.config.verify = VerifyConfig(top_k=10)
        with FAULTS.inject(
            "executor.execute",
            times=None,
            exc=lambda: SqlExecutionError("injected runtime failure"),
        ):
            result = guarded_pipeline.translate_ranked_report(
                example.question, db
            )
        assert result.translations
        assert result.report.verify_outcomes.get("error", 0) >= 1
        assert result.report.verify_demoted >= 1
        # Every execution fails, so repair burns its bounded budget (or
        # runs out of untried conditions) without ever succeeding.
        assert 1 <= result.report.repair_attempts <= 2
        assert not result.report.repair_succeeded
        span_names = _span_names(result.report.trace)
        assert "verify" in span_names and "repair" in span_names

    def test_verify_span_present_on_default_path(
        self, guarded_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[1]
        db = tiny_benchmark.dev.database(example.db_id)
        result = guarded_pipeline.translate_ranked_report(
            example.question, db
        )
        assert "verify" in _span_names(result.report.trace)


def _span_names(trace: dict) -> set:
    names = {trace.get("name")}
    for child in trace.get("children", ()):
        names |= _span_names(child)
    return names


# ----------------------------------------------------------------------
# Satellite 6: journal analysis folds verify/repair per hardness bucket.


_JOURNAL_RECORDS = [
    {
        "event": "eval", "hardness": "easy", "em": True, "ex": True,
        "ok": True, "degraded": False, "deadline_expired": False,
        "lint_rejected": 0, "lint_codes": {},
        "verify_demoted": 0, "verify_outcomes": {"ok": 3},
        "repair_attempts": 0, "repair_succeeded": False,
        "faults": [], "latency_s": 0.010,
        "stages": {"generate": 0.004, "verify": 0.002},
    },
    {
        "event": "eval", "hardness": "hard", "em": False, "ex": True,
        "ok": True, "degraded": False, "deadline_expired": False,
        "lint_rejected": 1, "lint_codes": {"SQL003": 1},
        "verify_demoted": 2, "verify_outcomes": {"empty": 1, "error": 1, "ok": 1},
        "repair_attempts": 1, "repair_succeeded": True,
        "faults": [], "latency_s": 0.020,
        "stages": {"generate": 0.008, "verify": 0.004, "repair": 0.005},
    },
    {
        "event": "eval", "hardness": "hard", "em": False, "ex": False,
        "ok": True, "degraded": True, "deadline_expired": False,
        "lint_rejected": 0, "lint_codes": {},
        "verify_demoted": 1, "verify_outcomes": {"error": 1, "ok": 2},
        "repair_attempts": 1, "repair_succeeded": False,
        "faults": [{"stage": "repair", "fallback": "keep"}],
        "latency_s": 0.030,
        "stages": {"generate": 0.010, "verify": 0.006, "repair": 0.008},
    },
    {
        "event": "translate", "ok": True, "degraded": False,
        "deadline_expired": False, "lint_rejected": 0, "lint_codes": {},
        "verify_demoted": 1, "verify_outcomes": {"empty": 1, "ok": 2},
        "repair_attempts": 0, "repair_succeeded": False,
        "faults": [], "latency_s": 0.015, "stages": {"verify": 0.003},
    },
]


class TestJournalAnalysis:
    @pytest.fixture()
    def summary(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = Journal(path, fsync=False)
        for record in _JOURNAL_RECORDS:
            journal.append(record, stamp=False)
        journal.close()
        return aggregate_journal(path)

    def test_verify_repair_totals(self, summary):
        assert summary.verify_demoted == 4
        assert summary.verify_outcomes == {
            "empty": 2, "error": 2, "ok": 8,
        }
        assert summary.repair_attempts == 2
        assert summary.repair_succeeded == 1

    def test_per_hardness_rates(self, summary):
        hard = summary.by_hardness["hard"]
        assert hard.total == 2
        assert hard.verify_demoted == 3
        assert hard.demotion_rate == 1.0
        assert hard.repair_records == 2
        assert hard.repair_success_rate == 0.5
        easy = summary.by_hardness["easy"]
        assert easy.demotion_rate == 0.0
        assert easy.repair_success_rate == 0.0

    def test_as_dict_is_json_ready(self, summary):
        snapshot = json.loads(json.dumps(summary.as_dict()))
        assert snapshot["verify_demoted"] == 4
        assert snapshot["by_hardness"]["hard"]["repair_success_rate"] == 0.5
        assert snapshot["by_hardness"]["hard"]["demotion_rate"] == 1.0

    def test_render_matches_golden_file(self, summary):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert summary.render() + "\n" == golden
