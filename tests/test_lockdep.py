"""Runtime lockdep witness: unit tests + instrumented chaos regressions.

Three layers:

1. Unit tests for the witness mechanics — inversion detection is
   schedule-independent (a sequential ``A→B`` then ``B→A`` in one
   thread is enough), RLock reentrancy is tolerated, double-acquiring a
   non-reentrant ``Lock`` raises instead of hanging the run, witness
   dumps carry both acquisition stacks, and hold-time outliers are
   measured on an injected clock.
2. A seeded deterministic multi-thread hammer: every thread takes lock
   pairs in the globally sorted order, so the run must stay clean.
3. The regression the tentpole exists for: the tenancy swap-under-fire
   scenario and a serve/ops hammer rebuilt *inside* ``lockdep_scope()``
   (the factory seam only instruments locks constructed under an active
   scope) must finish with **zero** order inversions.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.core.resilience import FAULTS, InjectedFault, TranslationReport
from repro.core.pipeline import RankedResult
from repro.devtools.lockdep import (
    LockdepViolation,
    lockdep_scope,
    new_condition,
    new_lock,
    new_rlock,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloEngine, SloSpec
from repro.serve import ServiceConfig, TranslationService
from repro.sqlkit.errors import (
    CheckpointCorrupt,
    Overloaded,
    TenantOverloaded,
    TenantSwapError,
)
from repro.tenancy import Router, TenantQuota
from tests.test_serve import _ranked

pytestmark = pytest.mark.concurrency


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


# ----------------------------------------------------------------------
# Factory seam: the disabled path hands out plain primitives.


def test_disabled_path_returns_plain_threading_primitives():
    assert type(new_lock("X._lock")) is type(threading.Lock())
    assert type(new_rlock("X._rlock")) is type(threading.RLock())
    assert isinstance(new_condition("X._cond"), threading.Condition)


def test_scope_restores_previous_state():
    with lockdep_scope() as outer:
        with lockdep_scope() as inner:
            assert inner is not outer
            lock = new_lock("A._lock")
            with lock:
                pass
            assert inner.report()["edges"] == []
        # Outer scope is restored: new locks report to it again.
        lock = new_lock("B._lock")
        with lock:
            pass
    assert type(new_lock("C._lock")) is type(threading.Lock())


# ----------------------------------------------------------------------
# Inversion detection (schedule-independent).


def test_sequential_inversion_detected_in_one_thread():
    with lockdep_scope() as dep:
        a = new_lock("A._lock")
        b = new_lock("B._lock")
        with a:
            with b:
                pass
        with b:
            with a:  # reverse order: never deadlocks here, still wrong
                pass
        assert len(dep.inversions) == 1
        record = dep.inversions[0]
        assert record["edge"] == ["B._lock", "A._lock"]
        assert record["prior_edge"] == ["A._lock", "B._lock"]
        with pytest.raises(LockdepViolation, match="inversion"):
            dep.assert_clean()


def test_cross_thread_inversion_detected_without_deadlock():
    # The two threads run to completion sequentially — detection works
    # on the edge graph, not on an actual lock-up.
    with lockdep_scope() as dep:
        a = new_lock("A._lock")
        b = new_lock("B._lock")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()
        assert len(dep.inversions) == 1
        assert dep.inversions[0]["thread"] != "MainThread"


def test_consistent_order_is_clean():
    with lockdep_scope() as dep:
        a = new_lock("A._lock")
        b = new_lock("B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass
        dep.assert_clean()
        assert dep.edges() == {("A._lock", "B._lock")}


def test_witness_dump_carries_both_stacks(tmp_path):
    witness = tmp_path / "lockdep-witness.json"
    with lockdep_scope() as dep:
        a = new_lock("A._lock")
        b = new_lock("B._lock")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        with pytest.raises(LockdepViolation):
            dep.assert_clean(witness_path=witness)
    payload = json.loads(witness.read_text())
    (inversion,) = payload["inversions"]
    # Both edges carry real acquisition stacks anchored in this test.
    for key in ("stack", "prior_stack"):
        assert inversion[key], key
        assert any("test_lockdep.py" in frame for frame in inversion[key])
    assert payload["edges"]  # the full observed graph rides along


# ----------------------------------------------------------------------
# Reentrancy and self-deadlock.


def test_rlock_reentry_tolerated():
    with lockdep_scope() as dep:
        r = new_rlock("R._rlock")
        with r:
            with r:
                pass
        dep.assert_clean()
        assert dep.edges() == set()  # re-entry records no self edge


def test_double_acquire_raises_instead_of_hanging():
    with lockdep_scope() as dep:
        lock = new_lock("L._lock")
        lock.acquire()
        try:
            with pytest.raises(LockdepViolation, match="re-acquired"):
                lock.acquire()
        finally:
            lock.release()
        assert dep.violations[0]["kind"] == "self-deadlock"
        with pytest.raises(LockdepViolation):
            dep.assert_clean()


def test_same_name_different_instances_tolerated():
    # Two Tenant._lock instances nested is peer-order policy, not an
    # automatic deadlock; counted but not an inversion.
    with lockdep_scope() as dep:
        first = new_lock("Tenant._lock")
        second = new_lock("Tenant._lock")
        with first:
            with second:
                pass
        dep.assert_clean()
        assert dep.same_key_nesting == 1
        assert dep.edges() == set()


def test_condition_wait_releases_held_bookkeeping():
    with lockdep_scope() as dep:
        cond = new_condition("G._cond")
        flag: list[int] = []

        def producer():
            with cond:
                flag.append(1)
                cond.notify_all()

        with cond:
            threading.Thread(target=producer).start()
            assert cond.wait_for(lambda: flag, timeout=5)
        dep.assert_clean()


def test_hold_time_outlier_on_injected_clock():
    ticks = iter([0.0, 10.0])  # acquire at t=0, release at t=10
    with lockdep_scope(
        clock=lambda: next(ticks), hold_threshold=0.5
    ) as dep:
        lock = new_lock("Slow._lock")
        with lock:
            pass
        (outlier,) = dep.hold_outliers
        assert outlier["lock"] == "Slow._lock"
        assert outlier["held_seconds"] == 10.0
        dep.assert_clean()  # outliers inform; they do not fail


# ----------------------------------------------------------------------
# Seeded deterministic multi-thread hammer.


def test_seeded_hammer_with_global_order_stays_clean():
    names = [f"Lock{i}._lock" for i in range(4)]
    with lockdep_scope() as dep:
        locks = {name: new_lock(name) for name in names}
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(200):
                    pair = sorted(rng.sample(names, 2))
                    with locks[pair[0]]:
                        with locks[pair[1]]:
                            pass
            except BaseException as exc:  # repolint: allow[broad-except] — surfacing hammer failures
                errors.append(exc)

        pool = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(6)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        dep.assert_clean()
        # Every observed edge respects the global sort order.
        assert dep.edges()
        for held, then in dep.edges():
            assert held < then


# ----------------------------------------------------------------------
# Instrumented chaos regressions: the repo's own stack, zero inversions.


class EpochPipeline:
    """Stub shard stamping its identity into every translation."""

    breakers = None
    _trained = True

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def translate_ranked_report(self, question, db, compositions=None):
        report = TranslationReport(question=question)
        result = RankedResult([_ranked()], report)
        result.shard_tag = self.tag
        return result


def _drain(futures) -> int:
    resolved = 0
    for future in futures:
        try:
            future.result(timeout=60)
            resolved += 1
        except InjectedFault:
            resolved += 1  # armed serve.handle storm: accounted
    return resolved


def test_swap_under_fire_reports_zero_inversions(world_db, tmp_path):
    """The tenancy swap-under-fire scenario under full instrumentation.

    Everything — router, tenants, service, quotas — is constructed
    inside the scope, so every seam lock (ShardGuard._cond,
    Tenant._lock, TenantRegistry._lock, TranslationService._lock,
    TokenBucket._lock, CircuitBreaker._lock, ...) is witnessed.
    """
    with lockdep_scope() as dep:
        router = Router()
        router.register(
            "alpha", EpochPipeline("epoch-1"), quota=TenantQuota(max_share=48)
        )
        router.register("beta", EpochPipeline("epoch-1"))
        config = ServiceConfig(workers=4, queue_limit=256, max_retries=0)
        futures = []
        submitted_lock = threading.Lock()

        with TranslationService(router, config) as service:

            def hammer(tenant: str) -> None:
                for _ in range(60):
                    try:
                        future = service.submit(
                            "q", world_db, tenant=tenant
                        )
                    except (TenantOverloaded, Overloaded):
                        continue
                    with submitted_lock:
                        futures.append(future)

            pool = [
                threading.Thread(target=hammer, args=(tenant,))
                for tenant in ("alpha", "beta")
                for _ in range(2)
            ]
            for thread in pool:
                thread.start()

            # Mid-traffic: a failpoint storm, a corrupt-swap rollback,
            # and a good swap — the full chaos choreography.
            FAULTS.arm("serve.handle", times=3)

            def corrupt():
                raise CheckpointCorrupt("bit flip")

            with pytest.raises(TenantSwapError):
                service.swap(corrupt, tenant="alpha")
            assert service.swap(EpochPipeline("epoch-2"), tenant="alpha") == 2

            for thread in pool:
                thread.join(timeout=30)
            assert _drain(futures) == len(futures)

        witness = tmp_path / "swap-under-fire-witness.json"
        dep.assert_clean(witness_path=witness)
        assert not witness.exists()  # clean runs dump nothing
        # The run was genuinely instrumented, not a vacuous pass: the
        # serving stack's seam locks were all witnessed at runtime.
        assert dep.acquisitions > 0
        assert {
            "TranslationService._lock",
            "TenantRegistry._lock",
            "Tenant._lock",
            "ShardGuard._cond",
        } <= dep.seen


def test_serve_ops_hammer_reports_zero_inversions(world_db):
    """Service + metrics + SLO engine + flight recorder under fire."""
    with lockdep_scope() as dep:
        registry = MetricsRegistry()
        engine = SloEngine((SloSpec("availability"),), registry=registry)
        recorder = FlightRecorder(capacity=32, registry=registry)
        router = Router()
        router.register("alpha", EpochPipeline("epoch-1"))
        config = ServiceConfig(workers=2, queue_limit=128, max_retries=0)
        errors: list[BaseException] = []

        with TranslationService(router, config) as service:

            def traffic() -> None:
                futures = []
                try:
                    for _ in range(40):
                        try:
                            futures.append(
                                service.submit("q", world_db, tenant="alpha")
                            )
                        except (TenantOverloaded, Overloaded):
                            continue
                    _drain(futures)
                except BaseException as exc:  # repolint: allow[broad-except] — surfacing hammer failures
                    errors.append(exc)

            def observe(worker: int) -> None:
                try:
                    for i in range(100):
                        record = {
                            "event": "translate",
                            "tenant": "alpha",
                            "latency_s": 0.01,
                            "degraded": bool(i % 3 == 0),
                            "deadline_expired": False,
                            "faults": [],
                            "verify_demoted": 0,
                            "repair_attempts": 0,
                        }
                        engine.observe(record, ts=worker * 1000.0 + i)
                        recorder.consider(record)
                        registry.render_prometheus()
                        service.health()
                except BaseException as exc:  # repolint: allow[broad-except] — surfacing hammer failures
                    errors.append(exc)

            pool = [threading.Thread(target=traffic) for _ in range(2)] + [
                threading.Thread(target=observe, args=(w,)) for w in range(3)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join(timeout=60)

        assert not errors
        dep.assert_clean()
        # Cross-component edges were really exercised.
        edges = dep.edges()
        assert ("SloEngine._lock", "MetricsRegistry._lock") in edges
