"""Performance-layer tests: bounded LRU caching + batched scoring.

Two contracts are verified here, both load-bearing for the vectorized
ranking hot path:

1. **Equivalence** — batching and memoization never change what is
   computed.  The batched rankers match their per-item references to
   float precision, cold caches match disabled caches exactly (the
   compute path is the same), and a hypothesis sweep checks the full
   pipeline returns the same ranked SQL with caching on and off.
2. **Boundedness** — every cache has a hard entry bound with
   least-recently-*used* eviction, refitting invalidates, and hit/miss/
   eviction counts flow into the ambient metrics registry.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import _dedupe_candidates
from repro.core.generation import GeneratedCandidate
from repro.core.rank_stage1 import DualTowerRanker, RankingTriple, Stage1Config
from repro.core.rank_stage2 import MultiGrainedRanker, Stage2Config
from repro.nn.text import HashingVectorizer, TextFeaturizer, _fnv1a, _hash_token
from repro.obs.metrics import MetricsRegistry, registry_scope
from repro.perf.cache import MISS, LRUCache, caching_enabled, caching_scope
from repro.perf.memo import (
    cached_normal_sql,
    cached_sql_surface,
    cached_unit_phrases,
)
from repro.sqlkit.normalize import normalize
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql
from repro.sqlkit.sql2nl import describe_query, unit_phrases

pytestmark = pytest.mark.perf


# ----------------------------------------------------------------------
# LRUCache: bound, recency, invalidation, kill-switch, metrics, threads.


class TestLRUCache:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            LRUCache("bad", max_entries=0)
        with pytest.raises(ValueError):
            LRUCache("ok", max_entries=1).resize(0)

    def test_hit_miss_and_store(self):
        cache = LRUCache("t", max_entries=4)
        assert cache.lookup("a") is MISS
        cache.put("a", 1)
        assert cache.lookup("a") == 1
        assert cache.get_or("b", lambda: 2) == 2
        assert cache.get_or("b", lambda: 99) == 2  # cached, not recomputed
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 2

    def test_bound_enforced_with_lru_eviction(self):
        cache = LRUCache("t", max_entries=3)
        for key in "abc":
            cache.put(key, key)
        assert cache.lookup("a") == "a"  # refresh a's recency
        cache.put("d", "d")  # bound hit: evicts b, the least recently used
        assert len(cache) == 3
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats()["evictions"] == 1

    def test_resize_shrinks_evicting_oldest(self):
        cache = LRUCache("t", max_entries=4)
        for key in "abcd":
            cache.put(key, key)
        cache.resize(2)
        assert len(cache) == 2
        assert "c" in cache and "d" in cache
        cache.resize(8)
        assert cache.max_entries == 8

    def test_invalidate_clears_and_bumps_version(self):
        cache = LRUCache("t", max_entries=4)
        cache.put("a", 1)
        version = cache.version
        cache.invalidate()
        assert len(cache) == 0
        assert cache.version == version + 1
        assert cache.lookup("a") is MISS

    def test_caching_scope_disables_without_changing_results(self):
        cache = LRUCache("t", max_entries=4)
        cache.put("a", 1)
        calls = []

        def compute():
            calls.append(1)
            return 1

        assert caching_enabled()
        with caching_scope(False):
            assert not caching_enabled()
            assert cache.lookup("a") is MISS  # bypass, not eviction
            assert cache.get_or("a", compute) == 1
            assert cache.get_or("a", compute) == 1
        assert len(calls) == 2  # recomputed every time while disabled
        assert cache.lookup("a") == 1  # entry survived the scope
        stats = cache.stats()
        assert stats["misses"] == 0  # disabled lookups are uncounted
        assert stats["hits"] == 1

    def test_counters_flow_into_ambient_registry(self):
        registry = MetricsRegistry()
        with registry_scope(registry):
            cache = LRUCache("unit", max_entries=1)
            cache.get_or("a", lambda: 1)  # miss
            cache.get_or("a", lambda: 1)  # hit
            cache.put("b", 2)  # evicts a
            hits = registry.counter(
                "metasql_cache_hits_total", labelnames=("cache",)
            ).labels(cache="unit")
            misses = registry.counter(
                "metasql_cache_misses_total", labelnames=("cache",)
            ).labels(cache="unit")
            evictions = registry.counter(
                "metasql_cache_evictions_total", labelnames=("cache",)
            ).labels(cache="unit")
            assert hits.value == 1
            assert misses.value == 1
            assert evictions.value == 1

    def test_thread_hammer_stays_bounded_and_correct(self):
        cache = LRUCache("t", max_entries=8)
        errors: list[Exception] = []

        def worker(offset: int) -> None:
            try:
                for i in range(300):
                    key = (offset + i) % 24
                    value = cache.get_or(key, lambda key=key: key * 2)
                    assert value == key * 2
                    if i % 50 == 0:
                        cache.invalidate()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


# ----------------------------------------------------------------------
# Rendering memos: cached values match direct computation.


class TestRenderingMemos:
    SQL = "SELECT name FROM country WHERE code = 'ABW'"

    def test_cached_sql_surface_matches_direct(self, world_db):
        query = parse_sql(self.SQL)
        schema = world_db.schema
        direct = f"{to_sql(query)} ; {describe_query(query, schema)}"
        assert cached_sql_surface(query, schema) == direct
        assert cached_sql_surface(query, schema) == direct  # warm hit

    def test_cached_unit_phrases_matches_direct(self, world_db):
        query = parse_sql(self.SQL)
        schema = world_db.schema
        assert cached_unit_phrases(query, schema) == tuple(
            unit_phrases(query, schema)
        )

    def test_cached_normal_sql_matches_direct(self):
        query = parse_sql("SELECT name FROM country WHERE code = 'ABW'")
        assert cached_normal_sql(query) == to_sql(normalize(query))

    def test_default_vocabulary_key_is_distinct(self, world_db):
        query = parse_sql(self.SQL)
        with_schema = cached_sql_surface(query, world_db.schema)
        without = cached_sql_surface(query)
        assert with_schema.startswith(to_sql(query))
        assert without.startswith(to_sql(query))


# ----------------------------------------------------------------------
# Text featurization: the shared accumulation path + token-hash memo.


class TestTextBatching:
    def test_hash_token_is_memo_of_full_hash(self):
        assert _hash_token("select", 64) == _fnv1a("select") % 64
        assert _hash_token("select", 1024) == _fnv1a("select") % 1024

    def test_hashing_vectorizer_single_matches_batch(self):
        vectorizer = HashingVectorizer(buckets=128)
        texts = ["alpha beta", "beta gamma delta", "alpha"]
        batch = vectorizer.transform_many(texts)
        for row, text in enumerate(texts):
            np.testing.assert_array_equal(
                vectorizer.transform(text), batch[row]
            )

    def test_featurizer_single_matches_batch(self):
        texts = ["alpha beta gamma", "beta beta delta", "gamma epsilon"]
        featurizer = TextFeaturizer(buckets=128).fit(texts)
        batch = featurizer.transform_many(texts)
        for row, text in enumerate(texts):
            np.testing.assert_allclose(
                featurizer.transform(text), batch[row], atol=1e-12
            )


# ----------------------------------------------------------------------
# Batched rankers match their per-item references.


def _triples(n: int = 80, seed: int = 3) -> list[RankingTriple]:
    rng = np.random.default_rng(seed)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
    triples = []
    for __ in range(n):
        size = int(rng.integers(2, 5))
        question = list(rng.choice(words, size=size, replace=False))
        sql = list(rng.choice(words, size=size, replace=False))
        shared = len(set(sql) & set(question))
        triples.append(
            RankingTriple(
                question=" ".join(question),
                sql_text=" ".join(sql),
                target=shared / size,
            )
        )
    return triples


class TestStage1Batching:
    @pytest.fixture(scope="class")
    def ranker(self):
        config = Stage1Config(epochs=10, buckets=128, embed_dim=16)
        return DualTowerRanker(config).fit(_triples())

    CANDIDATES = [
        "alpha beta",
        "eta zeta",
        "alpha eta",
        "beta gamma delta",
        "alpha beta",  # duplicate: featurized once, scored twice
        "delta",
    ]

    def _assert_matches_sequential(self, ranker, top_k):
        batched = ranker.rank("alpha beta gamma", self.CANDIDATES, top_k)
        reference = ranker.rank_sequential(
            "alpha beta gamma", self.CANDIDATES, top_k
        )
        assert [i for i, __ in batched] == [i for i, __ in reference]
        np.testing.assert_allclose(
            [s for __, s in batched],
            [s for __, s in reference],
            atol=1e-9,
        )

    def test_batched_matches_sequential(self, ranker):
        self._assert_matches_sequential(ranker, top_k=10)

    def test_batched_matches_sequential_topk(self, ranker):
        self._assert_matches_sequential(ranker, top_k=3)

    def test_cold_cache_equals_disabled_exactly(self, ranker):
        with caching_scope(False):
            disabled = ranker.rank("alpha beta", self.CANDIDATES)
        ranker.invalidate_caches()
        cold = ranker.rank("alpha beta", self.CANDIDATES)
        assert cold == disabled  # same compute path -> bit-identical
        warm = ranker.rank("alpha beta", self.CANDIDATES)
        assert warm == cold

    def test_eviction_under_pressure_stays_correct(self, ranker):
        ranker._sql_embed_cache.resize(2)  # far smaller than the batch
        try:
            for __ in range(3):
                self._assert_matches_sequential(ranker, top_k=10)
            assert len(ranker._sql_embed_cache) <= 2
            assert ranker._sql_embed_cache.stats()["evictions"] > 0
        finally:
            ranker._sql_embed_cache.resize(
                ranker.config.cache_entries
            )
            ranker.invalidate_caches()

    def test_fit_invalidates_caches(self, ranker):
        ranker.rank("alpha beta", self.CANDIDATES)
        assert len(ranker._sql_embed_cache) > 0
        version = ranker._sql_embed_cache.version
        ranker.fit(_triples(n=40, seed=9))
        assert len(ranker._sql_embed_cache) == 0
        assert ranker._sql_embed_cache.version > version

    def test_warm_questions_primes_cache(self, ranker):
        ranker.invalidate_caches()
        ranker.warm_questions(["alpha beta", "eta zeta"])
        assert "alpha beta" in ranker._query_embed_cache
        before = ranker._query_embed_cache.stats()["hits"]
        ranker.rank("alpha beta", self.CANDIDATES)
        assert ranker._query_embed_cache.stats()["hits"] == before + 1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DualTowerRanker().rank("x", ["y"])


class TestStage2Batching:
    @pytest.fixture(scope="class")
    def ranker(self):
        from tests.core.test_rankers import _synthetic_lists

        return MultiGrainedRanker(Stage2Config(epochs=4)).fit(
            _synthetic_lists(n=30)
        )

    CANDIDATES = [
        ("zeta epsilon delta", ("zeta", "epsilon", "delta")),
        ("alpha beta gamma", ("alpha", "beta", "gamma")),
        ("alpha zeta", ("alpha", "zeta")),
        ("beta", ()),  # no phrases: falls back to the surface text
        ("alpha beta gamma", ("alpha", "beta", "gamma")),  # duplicate
    ]

    def test_score_many_matches_score(self, ranker):
        question = "alpha beta gamma"
        batched = ranker.score_many(question, self.CANDIDATES)
        reference = [
            ranker.score(question, surface, phrases)
            for surface, phrases in self.CANDIDATES
        ]
        np.testing.assert_allclose(batched, reference, atol=1e-9)

    def test_rank_matches_sequential(self, ranker):
        question = "alpha beta gamma"
        batched = ranker.rank(question, self.CANDIDATES)
        reference = ranker.rank_sequential(question, self.CANDIDATES)
        assert [i for i, __ in batched] == [i for i, __ in reference]
        np.testing.assert_allclose(
            [s for __, s in batched],
            [s for __, s in reference],
            atol=1e-9,
        )

    def test_empty_candidates(self, ranker):
        assert ranker.score_many("q", []) == []
        assert ranker.rank("q", []) == []

    def test_cold_cache_equals_disabled_exactly(self, ranker):
        with caching_scope(False):
            disabled = ranker.rank("alpha zeta", self.CANDIDATES)
        ranker.invalidate_caches()
        cold = ranker.rank("alpha zeta", self.CANDIDATES)
        assert cold == disabled


# ----------------------------------------------------------------------
# Pipeline: dedupe, batched driver, and the caching-is-invisible sweep.


def _candidate(sql: str, score: float) -> GeneratedCandidate:
    query = parse_sql(sql)
    return GeneratedCandidate(
        query=query, score=score, metadata=None, sql_text=to_sql(query)
    )


class TestCandidateDedupe:
    def test_keeps_best_score_and_order(self):
        candidates = [
            _candidate("SELECT name FROM country", 0.4),
            _candidate("SELECT code FROM country", 0.9),
            _candidate("SELECT name FROM country", 0.8),  # dup, better
        ]
        surfaces = ["s0", "s1", "s2"]
        kept, kept_surfaces, dropped = _dedupe_candidates(
            candidates, surfaces
        )
        assert dropped == 1
        # The higher-scoring copy survives at its own position; relative
        # candidate order among survivors is preserved.
        assert [c.score for c in kept] == [0.9, 0.8]
        assert kept_surfaces == ["s1", "s2"]

    def test_no_duplicates_is_identity(self):
        candidates = [
            _candidate("SELECT name FROM country", 0.4),
            _candidate("SELECT code FROM country", 0.9),
        ]
        kept, surfaces, dropped = _dedupe_candidates(candidates, ["a", "b"])
        assert dropped == 0
        assert kept == candidates
        assert surfaces == ["a", "b"]

    def test_dedupe_count_lands_on_generate_span(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        outcome = trained_pipeline.translate_ranked_report(
            example.question, db
        )
        generate = next(
            child
            for child in outcome.report.trace["children"]
            if child["name"] == "generate"
        )
        assert "deduped" in generate["attributes"]
        assert generate["attributes"]["deduped"] >= 0


class TestTranslateMany:
    def test_matches_per_item_translation(
        self, trained_pipeline, tiny_benchmark
    ):
        examples = tiny_benchmark.dev.examples[:4]
        pairs = [
            (e.question, tiny_benchmark.dev.database(e.db_id))
            for e in examples
        ]
        batched = trained_pipeline.translate_many(pairs)
        for (question, db), outcome in zip(pairs, batched):
            single = trained_pipeline.translate_ranked_report(question, db)
            assert [to_sql(t.query) for t in outcome.translations] == [
                to_sql(t.query) for t in single.translations
            ]

    def test_stage_spans_carry_batch_size(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        outcome = trained_pipeline.translate_ranked_report(
            example.question, db
        )
        spans = {
            child["name"]: child for child in outcome.report.trace["children"]
        }
        assert spans["stage1"]["attributes"]["batch_size"] >= 1
        assert spans["stage2"]["attributes"]["batch_size"] >= 1

    def test_cache_traffic_reaches_ambient_registry(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        registry = MetricsRegistry()
        with registry_scope(registry):
            trained_pipeline.translate_ranked_report(example.question, db)
            trained_pipeline.translate_ranked_report(example.question, db)
        rendered = registry.render_prometheus()
        assert "metasql_cache_hits_total" in rendered
        assert "metasql_cache_misses_total" in rendered


class TestCachingIsInvisible:
    """Property: caching on/off never changes the translation output."""

    @settings(max_examples=12, deadline=None)
    @given(index=st.integers(min_value=0, max_value=11))
    def test_cache_toggle_preserves_output(
        self, trained_pipeline, tiny_benchmark, index
    ):
        examples = tiny_benchmark.dev.examples
        example = examples[index % len(examples)]
        db = tiny_benchmark.dev.database(example.db_id)
        with caching_scope(False):
            uncached = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        with caching_scope(True):
            cached = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        assert [to_sql(t.query) for t in cached.translations] == [
            to_sql(t.query) for t in uncached.translations
        ]
        np.testing.assert_allclose(
            [t.stage2_score for t in cached.translations],
            [t.stage2_score for t in uncached.translations],
            atol=1e-9,
        )
        # Report fields other than timing/trace are unchanged too.
        assert cached.report.degraded == uncached.report.degraded
        assert len(cached.report.faults) == len(uncached.report.faults)
