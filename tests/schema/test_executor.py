"""SQL executor tests over the world fixture, plus execution properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.schema.executor import execute
from repro.sqlkit.ast import SelectQuery, SetQuery
from repro.sqlkit.errors import SqlError
from repro.sqlkit.parser import parse_sql


def run(sql: str, db):
    return execute(parse_sql(sql), db)


class TestProjection:
    def test_simple(self, world_db):
        rows = run("SELECT name FROM country WHERE code = 'ABW'", world_db)
        assert rows == [("Aruba",)]

    def test_multiple_columns(self, world_db):
        rows = run(
            "SELECT name, population FROM country WHERE code = 'AIA'",
            world_db,
        )
        assert rows == [("Anguilla", 8000)]

    def test_star(self, world_db):
        rows = run("SELECT * FROM country WHERE code = 'ABW'", world_db)
        assert rows[0] == ("ABW", "Aruba", "North America", 103000)

    def test_distinct(self, world_db):
        rows = run("SELECT DISTINCT continent FROM country", world_db)
        assert len(rows) == 3

    def test_case_insensitive_string_compare(self, world_db):
        rows = run("SELECT name FROM country WHERE code = 'abw'", world_db)
        assert rows == [("Aruba",)]


class TestAggregates:
    def test_count_star(self, world_db):
        assert run("SELECT count(*) FROM country", world_db) == [(5,)]

    def test_avg(self, world_db):
        rows = run(
            "SELECT avg(percentage) FROM countrylanguage "
            "WHERE countrycode = 'ABW'",
            world_db,
        )
        assert rows[0][0] == pytest.approx(7.4)

    def test_min_max(self, world_db):
        rows = run(
            "SELECT min(population), max(population) FROM country", world_db
        )
        assert rows == [(8000, 22720000)]

    def test_sum(self, world_db):
        rows = run(
            "SELECT sum(population) FROM country WHERE continent = 'Europe'",
            world_db,
        )
        assert rows == [(7160400,)]

    def test_count_distinct(self, world_db):
        rows = run(
            "SELECT count(DISTINCT continent) FROM country", world_db
        )
        assert rows == [(3,)]

    def test_aggregate_empty_set(self, world_db):
        rows = run(
            "SELECT max(population) FROM country WHERE code = 'XXX'", world_db
        )
        assert rows == [(None,)]

    def test_count_empty_set_is_zero(self, world_db):
        rows = run(
            "SELECT count(*) FROM country WHERE code = 'XXX'", world_db
        )
        assert rows == [(0,)]


class TestJoins:
    def test_explicit_join(self, world_db):
        rows = run(
            "SELECT country.name FROM country JOIN countrylanguage "
            "ON country.code = countrylanguage.countrycode "
            "WHERE countrylanguage.language = 'English'",
            world_db,
        )
        assert sorted(rows) == [("Aruba",), ("Bermuda",)]

    def test_fk_inferred_join(self, world_db):
        rows = run(
            "SELECT country.name FROM country JOIN countrylanguage "
            "WHERE countrylanguage.language = 'Dari'",
            world_db,
        )
        assert rows == [("Afghanistan",)]


class TestGrouping:
    def test_group_count(self, world_db):
        rows = run(
            "SELECT continent, count(*) FROM country GROUP BY continent",
            world_db,
        )
        assert ("North America", 3) in rows

    def test_having(self, world_db):
        rows = run(
            "SELECT continent FROM country GROUP BY continent "
            "HAVING count(*) > 1",
            world_db,
        )
        assert rows == [("North America",)]

    def test_group_order_limit(self, world_db):
        rows = run(
            "SELECT continent, count(*) FROM country GROUP BY continent "
            "ORDER BY count(*) DESC LIMIT 1",
            world_db,
        )
        assert rows == [("North America", 3)]


class TestOrdering:
    def test_order_asc(self, world_db):
        rows = run("SELECT name FROM country ORDER BY population", world_db)
        assert rows[0] == ("Anguilla",)

    def test_order_desc_limit(self, world_db):
        rows = run(
            "SELECT name FROM country ORDER BY population DESC LIMIT 2",
            world_db,
        )
        assert rows == [("Afghanistan",), ("Switzerland",)]

    def test_multi_key_order(self, world_db):
        rows = run(
            "SELECT name FROM country ORDER BY continent, population DESC",
            world_db,
        )
        assert rows[0] == ("Afghanistan",)


class TestSubqueries:
    def test_not_in(self, world_db):
        rows = run(
            "SELECT name FROM country WHERE code NOT IN "
            "(SELECT countrycode FROM countrylanguage)",
            world_db,
        )
        assert sorted(rows) == [("Anguilla",), ("Switzerland",)]

    def test_scalar_comparison(self, world_db):
        rows = run(
            "SELECT name FROM country WHERE population > "
            "(SELECT avg(population) FROM country)",
            world_db,
        )
        assert sorted(rows) == [("Afghanistan",), ("Switzerland",)]

    def test_from_subquery(self, world_db):
        rows = run(
            "SELECT count(*) FROM (SELECT countrycode FROM countrylanguage "
            "GROUP BY countrycode HAVING count(*) > 1)",
            world_db,
        )
        assert rows == [(2,)]


class TestSetOps:
    def test_except_paper_example(self, world_db):
        rows = run(
            "SELECT countrycode FROM countrylanguage EXCEPT "
            "SELECT countrycode FROM countrylanguage "
            "WHERE language = 'English'",
            world_db,
        )
        assert rows == [("AFG",)]

    def test_union_dedupes(self, world_db):
        rows = run(
            "SELECT countrycode FROM countrylanguage UNION "
            "SELECT countrycode FROM countrylanguage",
            world_db,
        )
        assert len(rows) == 3

    def test_intersect(self, world_db):
        rows = run(
            "SELECT countrycode FROM countrylanguage WHERE isofficial = 'T' "
            "INTERSECT SELECT countrycode FROM countrylanguage "
            "WHERE language = 'English'",
            world_db,
        )
        assert sorted(rows) == [("ABW",), ("BMU",)]


class TestPredicates:
    def test_between(self, world_db):
        rows = run(
            "SELECT name FROM country WHERE population "
            "BETWEEN 50000 AND 200000",
            world_db,
        )
        assert sorted(rows) == [("Aruba",), ("Bermuda",)]

    def test_like(self, world_db):
        rows = run(
            "SELECT name FROM country WHERE name LIKE '%land%'", world_db
        )
        assert rows == [("Switzerland",)]

    def test_or(self, world_db):
        rows = run(
            "SELECT name FROM country WHERE code = 'ABW' OR code = 'CHE'",
            world_db,
        )
        assert len(rows) == 2

    def test_in_literal_list(self, world_db):
        rows = run(
            "SELECT name FROM country WHERE code IN ('ABW', 'AIA')", world_db
        )
        assert len(rows) == 2

    def test_null_comparisons_false(self, db_with_nulls):
        rows = execute(
            parse_sql("SELECT name FROM t WHERE age > 0"), db_with_nulls
        )
        assert rows == [("has-age",)]


@pytest.fixture()
def db_with_nulls():
    from repro.schema.database import Database
    from repro.schema.schema import NUMBER, Column, Schema, Table

    schema = Schema(
        db_id="nulls",
        tables=(Table("t", (Column("name"), Column("age", NUMBER))),),
    )
    db = Database(schema)
    db.insert("t", {"name": "has-age", "age": 5})
    db.insert("t", {"name": "no-age"})
    return db


class TestExecutionProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_queries_execute(self, seed):
        domain = sorted(SPIDER_DOMAINS)[seed % len(SPIDER_DOMAINS)]
        db = build_domain(SPIDER_DOMAINS[domain], seed=6)
        sampler = QuerySampler(db, np.random.default_rng(seed))
        query = sampler.sample()
        rows = execute(query, db)  # must not raise
        if isinstance(query, SelectQuery) and query.limit is not None:
            assert len(rows) <= query.limit

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_except_subset_of_left(self, seed):
        db = build_domain(SPIDER_DOMAINS["pets"], seed=6)
        sampler = QuerySampler(db, np.random.default_rng(seed))
        query = sampler.sample()
        if not isinstance(query, SetQuery) or query.op != "except":
            return
        left_rows = set(execute(query.left, db))
        result = set(execute(query, db))
        assert result <= left_rows


class TestArithmetic:
    def test_select_arith_over_aggregates(self, world_db):
        rows = run(
            "SELECT max(population) - min(population) FROM country", world_db
        )
        assert rows == [(22720000 - 8000,)]

    def test_having_on_avg(self, world_db):
        rows = run(
            "SELECT continent FROM country GROUP BY continent "
            "HAVING avg(population) > 10000000",
            world_db,
        )
        assert rows == [("Asia",)]

    def test_row_arithmetic(self, world_db):
        rows = run(
            "SELECT population + 1 FROM country WHERE code = 'AIA'", world_db
        )
        assert rows == [(8001,)]
