"""In-memory database tests."""

import pytest

from repro.schema.database import Database
from repro.schema.schema import NUMBER, Column, Schema, Table
from repro.sqlkit.errors import SchemaError


@pytest.fixture()
def db():
    schema = Schema(
        db_id="x",
        tables=(
            Table("t", (Column("name"), Column("age", NUMBER))),
        ),
    )
    return Database(schema)


class TestInsert:
    def test_insert_and_read(self, db):
        db.insert("t", {"name": "Ann", "age": 30})
        assert db.table_rows("t") == [{"name": "Ann", "age": 30}]

    def test_insert_normalises_case(self, db):
        db.insert("T", {"NAME": "Bob", "AGE": 1})
        assert db.table_rows("t")[0]["name"] == "Bob"

    def test_missing_columns_become_null(self, db):
        db.insert("t", {"name": "Cara"})
        assert db.table_rows("t")[0]["age"] is None

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("t", {"nope": 1})

    def test_unknown_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("nope", {"name": "x"})


class TestQueries:
    def test_column_values_skips_nulls(self, db):
        db.insert("t", {"name": "Ann"})
        db.insert("t", {"name": "Bob", "age": 4})
        assert db.column_values("t", "age") == [4]

    def test_find_value_case_insensitive(self, world_db):
        matches = world_db.find_value("aruba")
        assert ("country", "name") in matches

    def test_find_value_number(self, world_db):
        matches = world_db.find_value(103000)
        assert ("country", "population") in matches

    def test_find_value_absent(self, world_db):
        assert world_db.find_value("zzz-not-there") == []

    def test_size(self, world_db):
        assert world_db.size() == 10
