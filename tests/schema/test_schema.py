"""Schema model tests."""

import pytest

from repro.schema.schema import NUMBER, Column, ForeignKey, Schema, Table
from repro.sqlkit.errors import SchemaError


@pytest.fixture()
def schema(world_db):
    return world_db.schema


class TestLookups:
    def test_table_case_insensitive(self, schema):
        assert schema.table("COUNTRY").name == "country"

    def test_missing_table_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.table("nope")

    def test_column_lookup(self, schema):
        column = schema.table("country").column("Population")
        assert column.ctype == NUMBER

    def test_missing_column_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.table("country").column("nope")

    def test_tables_of_column(self, schema):
        owners = schema.tables_of_column("population")
        assert [t.name for t in owners] == ["country"]

    def test_resolve_column_unique(self, schema):
        resolved = schema.resolve_column(
            "language", ("country", "countrylanguage")
        )
        assert resolved == "countrylanguage"

    def test_resolve_column_ambiguous(self):
        schema = Schema(
            db_id="x",
            tables=(
                Table("a", (Column("name"),)),
                Table("b", (Column("name"),)),
            ),
        )
        assert schema.resolve_column("name", ("a", "b")) is None


class TestJoins:
    def test_join_condition(self, schema):
        fk = schema.join_condition("countrylanguage", "country")
        assert fk is not None
        assert fk.parent_column == "code"

    def test_join_condition_symmetric(self, schema):
        assert schema.join_condition("country", "countrylanguage") is not None

    def test_join_path_direct(self, schema):
        path = schema.join_path("country", "countrylanguage")
        assert path == ["country", "countrylanguage"]

    def test_join_path_self(self, schema):
        assert schema.join_path("country", "country") == ["country"]

    def test_join_path_missing(self, schema):
        assert schema.join_path("country", "nonexistent") is None

    def test_join_path_transitive(self):
        schema = Schema(
            db_id="chain",
            tables=(
                Table("a", (Column("id", NUMBER),)),
                Table("b", (Column("id", NUMBER), Column("aid", NUMBER))),
                Table("c", (Column("id", NUMBER), Column("bid", NUMBER))),
            ),
            foreign_keys=(
                ForeignKey("b", "aid", "a", "id"),
                ForeignKey("c", "bid", "b", "id"),
            ),
        )
        assert schema.join_path("a", "c") == ["a", "b", "c"]


class TestKeyDetection:
    def test_fk_columns_are_keys(self, schema):
        assert schema.is_key_column("countrylanguage", "countrycode")
        assert schema.is_key_column("country", "code")

    def test_id_suffix_heuristic(self):
        schema = Schema(
            db_id="x", tables=(Table("t", (Column("emp_id", NUMBER),)),)
        )
        assert schema.is_key_column("t", "emp_id")

    def test_plain_column_not_key(self, schema):
        assert not schema.is_key_column("country", "population")


class TestVocabulary:
    def test_table_phrase(self, schema):
        assert schema.table_phrase("countrylanguage") == "countrylanguage"

    def test_column_phrase_prettifies(self):
        table = Table("t", (Column("pet_age", NUMBER),))
        schema = Schema(db_id="x", tables=(table,))
        assert schema.column_phrase("pet_age", "t") == "pet age"

    def test_column_phrase_uses_annotation(self):
        table = Table(
            "t", (Column("hs", NUMBER, phrase="training hours"),)
        )
        schema = Schema(db_id="x", tables=(table,))
        assert schema.column_phrase("hs", "t") == "training hours"

    def test_column_pairs(self, schema):
        pairs = schema.column_pairs()
        assert len(pairs) == sum(len(t.columns) for t in schema.tables)
