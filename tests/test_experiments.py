"""Integration tests for the experiment drivers (small scale, one model).

These exercise every table/figure driver end-to-end on the small context;
the full-scale runs live in benchmarks/.
"""

import pytest

from repro.experiments import fig6, table4, table5, table6, table7, table8, table9
from repro.experiments.common import get_context


@pytest.fixture(scope="module")
def ctx():
    return get_context("small")


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return table4.run(ctx, models=("lgesql",), limit=40)

    def test_rows_present(self, result):
        assert set(result.rows) == {"lgesql", "lgesql+metasql"}

    def test_science_columns(self, result):
        assert len(result.rows["lgesql"]["science"]) == 3

    def test_render_contains_paper_reference(self, result):
        text = result.render()
        assert "75.1" in text  # paper LGESQL EM
        assert "lgesql+metasql" in text

    def test_value_grounding_lifts_ex(self, result):
        assert (
            result.rows["lgesql+metasql"]["ex"]
            >= result.rows["lgesql"]["ex"]
        )


class TestTable5:
    def test_levels_and_overall(self, ctx):
        result = table5.run(ctx, models=("lgesql",), limit=60)
        row = result.rows["lgesql"]
        assert set(row) == {"easy", "medium", "hard", "extra", "overall"}
        assert row["easy"] >= row["extra"]
        assert "Table 5" in result.render()


class TestTable6:
    def test_statement_types(self, ctx):
        result = table6.run(ctx, models=("lgesql",), limit=60)
        assert set(result.rows["lgesql"]) == {
            "orderby", "groupby", "nested", "negation",
        }
        assert "ORDER BY" in result.render()


class TestTable7:
    def test_precision_monotone(self, ctx):
        result = table7.run(ctx, models=("lgesql",), limit=60)
        row = result.rows["lgesql+metasql"]
        assert row["p1"] <= row["p3"] <= row["p5"]
        assert row["mrr"] >= row["p1"]


class TestTable8:
    def test_stage_accuracies(self, ctx):
        result = table8.run(ctx, models=("lgesql",), limit=30)
        assert 0.0 < result.selection_accuracy <= 1.0
        row = result.rows["lgesql+metasql"]
        assert 0.0 <= row["generation"] <= 1.0
        assert 0.0 <= row["ranking"] <= 1.0


class TestTable9:
    def test_ablation_shapes(self, ctx):
        result = table9.run(ctx, limit=50)
        assert set(result.rows) == {
            "full",
            "w/o multi-label classifier",
            "w/o phrase-level supervision",
            "w/o second-stage ranking",
        }
        full = result.rows["full"]
        no_stage2 = result.rows["w/o second-stage ranking"]
        assert no_stage2["ranking_miss"] >= full["ranking_miss"]
        assert no_stage2["em"] <= full["em"]
        for row in result.rows.values():
            total = (
                row["generation_miss"]
                + row["ranking_miss"]
                + round(row["em"] * result.total)
            )
            assert total == result.total


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig6.run(ctx, limit=30, thresholds=(0.0, -40.0))

    def test_threshold_sweep_keys(self, result):
        assert set(result.threshold_sweep) == {0.0, -40.0}

    def test_correctness_variants(self, result):
        assert set(result.correctness) == {"correct", "incorrect", "none"}
        assert (
            result.correctness["correct"]
            >= result.correctness["incorrect"] - 0.05
        )

    def test_hardness_variants(self, result):
        assert "oracle" in result.hardness
        assert "fixed:100" in result.hardness

    def test_tag_variants(self, result):
        assert result.tags["oracle"] >= result.tags["random"] - 0.05

    def test_render(self, result):
        text = result.render()
        assert "Fig 6a" in text and "Fig 6d" in text
