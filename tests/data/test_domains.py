"""Domain catalog and database-builder tests."""

import numpy as np
import pytest

from repro.data.domains import SPIDER_DOMAINS, ColSpec, DomainSpec, TableSpec, build_domain
from repro.schema.schema import NUMBER, TEXT


class TestCatalog:
    def test_catalog_size(self):
        assert len(SPIDER_DOMAINS) >= 16

    @pytest.mark.parametrize("db_id", sorted(SPIDER_DOMAINS))
    def test_every_domain_builds(self, db_id):
        db = build_domain(SPIDER_DOMAINS[db_id], seed=1)
        assert db.size() > 0
        for table in db.schema.tables:
            assert db.table_rows(table.name)

    @pytest.mark.parametrize("db_id", sorted(SPIDER_DOMAINS))
    def test_foreign_keys_reference_real_columns(self, db_id):
        schema = build_domain(SPIDER_DOMAINS[db_id], seed=1).schema
        for fk in schema.foreign_keys:
            assert schema.table(fk.child_table).has_column(fk.child_column)
            assert schema.table(fk.parent_table).has_column(fk.parent_column)

    @pytest.mark.parametrize("db_id", sorted(SPIDER_DOMAINS))
    def test_fk_values_exist_in_parent(self, db_id):
        db = build_domain(SPIDER_DOMAINS[db_id], seed=2)
        for fk in db.schema.foreign_keys:
            parent_values = {
                v if not isinstance(v, str) else v.lower()
                for v in db.column_values(fk.parent_table, fk.parent_column)
            }
            for value in db.column_values(fk.child_table, fk.child_column):
                key = value.lower() if isinstance(value, str) else value
                assert key in parent_values

    def test_deterministic_given_seed(self):
        a = build_domain(SPIDER_DOMAINS["pets"], seed=9)
        b = build_domain(SPIDER_DOMAINS["pets"], seed=9)
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = build_domain(SPIDER_DOMAINS["pets"], seed=1)
        b = build_domain(SPIDER_DOMAINS["pets"], seed=2)
        assert a.rows != b.rows


class TestBuilder:
    def test_pk_sequential(self):
        spec = DomainSpec(
            db_id="x",
            tables=(
                TableSpec("t", (ColSpec("id", NUMBER, ("pk",)),), rows=5),
            ),
        )
        db = build_domain(spec, seed=1)
        assert db.column_values("t", "id") == [1, 2, 3, 4, 5]

    def test_unknown_value_spec_rejected(self):
        spec = DomainSpec(
            db_id="x",
            tables=(
                TableSpec("t", (ColSpec("a", TEXT, ("bogus",)),), rows=2),
            ),
        )
        with pytest.raises(ValueError):
            build_domain(spec, seed=1)

    def test_fk_before_parent_rejected(self):
        spec = DomainSpec(
            db_id="x",
            tables=(
                TableSpec(
                    "child", (ColSpec("pid", NUMBER, ("fk", "parent", "id")),),
                    rows=2,
                ),
                TableSpec("parent", (ColSpec("id", NUMBER, ("pk",)),), rows=2),
            ),
        )
        with pytest.raises(ValueError):
            build_domain(spec, seed=1)

    def test_int_range_respected(self):
        spec = DomainSpec(
            db_id="x",
            tables=(
                TableSpec(
                    "t", (ColSpec("v", NUMBER, ("int", 5, 9)),), rows=50
                ),
            ),
        )
        db = build_domain(spec, seed=1)
        values = db.column_values("t", "v")
        assert all(5 <= v <= 9 for v in values)
