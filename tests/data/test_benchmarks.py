"""SpiderSim / ScienceBenchmark-sim assembly tests."""

import pytest

from repro.data.sciencebench import build_sciencebenchmark
from repro.data.spider import build_spider
from repro.sqlkit.hardness import Hardness


class TestSpiderSim:
    def test_split_sizes(self, tiny_benchmark):
        assert len(tiny_benchmark.train) > len(tiny_benchmark.dev)
        assert len(tiny_benchmark.train.databases) >= 16

    def test_splits_share_databases(self, tiny_benchmark):
        assert tiny_benchmark.train.databases is tiny_benchmark.dev.databases

    def test_splits_disjoint(self, tiny_benchmark):
        train_keys = {
            (e.db_id, e.sql_text) for e in tiny_benchmark.train.examples
        }
        dev_keys = {
            (e.db_id, e.sql_text) for e in tiny_benchmark.dev.examples
        }
        assert not train_keys & dev_keys

    def test_deterministic(self):
        a = build_spider(seed=3, train_per_domain=5, dev_per_domain=2)
        b = build_spider(seed=3, train_per_domain=5, dev_per_domain=2)
        assert [e.question for e in a.train.examples] == [
            e.question for e in b.train.examples
        ]

    def test_hardness_mix(self, tiny_benchmark):
        buckets = tiny_benchmark.train.by_hardness()
        assert len(buckets[Hardness.EASY]) > 0
        assert len(buckets[Hardness.MEDIUM]) > 0

    def test_examples_reference_valid_databases(self, tiny_benchmark):
        for example in tiny_benchmark.dev.examples:
            db = tiny_benchmark.dev.database(example.db_id)
            assert db.schema.db_id == example.db_id

    def test_summary_renders(self, tiny_benchmark):
        text = tiny_benchmark.summary()
        assert "train=" in text and "dev=" in text


class TestScienceBenchmark:
    @pytest.fixture(scope="class")
    def science(self):
        return build_sciencebenchmark(per_domain=20)

    def test_three_domains(self, science):
        assert sorted(science) == ["cordis", "oncomx", "sdss"]

    def test_sizes(self, science):
        for dataset in science.values():
            assert len(dataset) == 20

    def test_sdss_join_heavy(self, science):
        from repro.sqlkit.ast import SelectQuery

        joins = sum(
            1
            for e in science["sdss"].examples
            if isinstance(e.sql, SelectQuery) and len(e.sql.from_.tables) > 1
        )
        assert joins >= 6

    def test_symbolic_columns_present(self, science):
        schema = science["sdss"].database("sdss").schema
        assert schema.table("specobj").has_column("specobjid")

    def test_jargon_applied(self, science):
        questions = " ".join(
            e.question.lower() for e in science["sdss"].examples
        )
        assert any(
            cue in questions
            for cue in ("brighter than", "fainter than", "having", "binned by")
        )

    def test_dataset_subset_helper(self, science):
        dataset = science["oncomx"]
        subset = dataset.subset(lambda e: "gene" in e.question.lower())
        assert len(subset) <= len(dataset)
