"""Spider-format export/import round-trip tests."""

import json

import pytest

from repro.data.export import (
    examples_to_spider,
    export_benchmark,
    load_benchmark,
    schema_to_spider,
    spider_to_schema,
)
from repro.schema.executor import execute
from repro.sqlkit.compare import exact_match


class TestSchemaRoundTrip:
    def test_tables_json_entry_shape(self, world_db):
        entry = schema_to_spider(world_db.schema)
        assert entry["db_id"] == "world"
        assert entry["column_names_original"][0] == [-1, "*"]
        assert entry["table_names_original"] == ["country", "countrylanguage"]
        assert entry["foreign_keys"]  # the FK is exported

    def test_round_trip_schema(self, world_db):
        entry = schema_to_spider(world_db.schema)
        rebuilt = spider_to_schema(entry)
        assert rebuilt.db_id == "world"
        assert rebuilt.table("country").has_column("population")
        assert rebuilt.table("country").column("population").ctype == "number"
        fk = rebuilt.join_condition("countrylanguage", "country")
        assert fk is not None and fk.parent_column == "code"

    def test_json_serializable(self, world_db):
        json.dumps(schema_to_spider(world_db.schema))


class TestBenchmarkRoundTrip:
    @pytest.fixture(scope="class")
    def exported(self, tiny_benchmark, tmp_path_factory):
        directory = tmp_path_factory.mktemp("spider_export")
        export_benchmark(tiny_benchmark, directory)
        return directory

    def test_layout(self, exported):
        assert (exported / "tables.json").exists()
        assert (exported / "train.json").exists()
        assert (exported / "dev.json").exists()
        assert (exported / "database" / "pets" / "rows.json").exists()

    def test_examples_shape(self, tiny_benchmark):
        records = examples_to_spider(tiny_benchmark.dev)
        assert all(
            set(record) == {"db_id", "question", "query"}
            for record in records
        )

    def test_round_trip_examples(self, exported, tiny_benchmark):
        loaded = load_benchmark(exported)
        assert len(loaded.train) == len(tiny_benchmark.train)
        assert len(loaded.dev) == len(tiny_benchmark.dev)
        for original, reloaded in zip(
            tiny_benchmark.dev.examples[:20], loaded.dev.examples[:20]
        ):
            assert original.question == reloaded.question
            assert exact_match(original.sql, reloaded.sql)

    def test_round_trip_rows_executable(self, exported, tiny_benchmark):
        loaded = load_benchmark(exported)
        example = loaded.dev.examples[0]
        db = loaded.dev.database(example.db_id)
        original_db = tiny_benchmark.dev.database(example.db_id)
        assert execute(example.sql, db) == execute(example.sql, original_db)
