"""Value-pool helper tests."""

import numpy as np

from repro.data import values as V


class TestPools:
    def test_pools_nonempty(self):
        for pool in (
            V.PERSON_FIRST, V.PERSON_LAST, V.CITIES, V.COUNTRIES,
            V.LANGUAGES, V.GENRES, V.PET_TYPES, V.MAJORS,
        ):
            assert len(pool) >= 5

    def test_sample_deterministic(self):
        a = V.sample(V.CITIES, np.random.default_rng(3))
        b = V.sample(V.CITIES, np.random.default_rng(3))
        assert a == b

    def test_sample_unique_within_pool(self):
        values = V.sample_unique(V.CITIES, 10, np.random.default_rng(1))
        assert len(values) == len(set(values)) == 10

    def test_sample_unique_beyond_pool_suffixes(self):
        small = ("a", "b")
        values = V.sample_unique(small, 5, np.random.default_rng(1))
        assert len(values) == 5
        assert len(set(values)) == 5

    def test_person_name_two_parts(self):
        name = V.person_name(np.random.default_rng(0))
        assert len(name.split()) == 2
