"""Query sampler tests."""

import numpy as np
import pytest

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import DEFAULT_WEIGHTS, QuerySampler, SamplerConfig
from repro.schema.executor import execute
from repro.sqlkit.ast import SelectQuery, SetQuery
from repro.sqlkit.hardness import Hardness, hardness_level


@pytest.fixture(scope="module")
def pets_db():
    return build_domain(SPIDER_DOMAINS["pets"], seed=3)


@pytest.fixture()
def sampler(pets_db):
    return QuerySampler(pets_db, np.random.default_rng(0))


class TestSampling:
    def test_sample_is_executable(self, sampler, pets_db):
        for __ in range(30):
            query = sampler.sample()
            execute(query, pets_db)  # must not raise

    def test_mostly_nonempty_results(self, pets_db):
        sampler = QuerySampler(pets_db, np.random.default_rng(1))
        nonempty = sum(
            1 for __ in range(60) if execute(sampler.sample(), pets_db)
        )
        assert nonempty >= 40

    def test_deterministic_given_rng_seed(self, pets_db):
        a = QuerySampler(pets_db, np.random.default_rng(5)).sample_many(10)
        b = QuerySampler(pets_db, np.random.default_rng(5)).sample_many(10)
        assert a == b

    def test_template_coverage(self, pets_db):
        sampler = QuerySampler(pets_db, np.random.default_rng(2))
        queries = sampler.sample_many(300)
        has_setop = any(isinstance(q, SetQuery) for q in queries)
        has_group = any(
            isinstance(q, SelectQuery) and q.group_by for q in queries
        )
        has_order = any(
            isinstance(q, SelectQuery) and q.order_by for q in queries
        )
        has_join = any(
            isinstance(q, SelectQuery) and len(q.from_.tables) > 1
            for q in queries
        )
        has_nested = any(
            isinstance(q, SelectQuery)
            and q.where is not None
            and any(p.has_subquery for p in q.where.predicates)
            for q in queries
        )
        assert all((has_setop, has_group, has_order, has_join, has_nested))

    def test_hardness_mix_spans_levels(self, pets_db):
        sampler = QuerySampler(pets_db, np.random.default_rng(4))
        levels = {hardness_level(q) for q in sampler.sample_many(250)}
        assert Hardness.EASY in levels
        assert Hardness.MEDIUM in levels
        assert (Hardness.HARD in levels) or (Hardness.EXTRA in levels)

    def test_projection_avoids_key_columns(self, pets_db):
        config = SamplerConfig(
            weights={"projection": 1.0}
        )
        sampler = QuerySampler(pets_db, np.random.default_rng(6), config)
        schema = pets_db.schema
        for __ in range(40):
            query = sampler.sample()
            table = schema.table(query.from_.tables[0])
            # Tables made only of key columns are exempt from the rule.
            if all(
                schema.is_key_column(table.name, c.name)
                for c in table.columns
            ):
                continue
            for expr in query.select:
                assert not schema.is_key_column(expr.table, expr.column)

    def test_custom_weights_respected(self, pets_db):
        config = SamplerConfig(weights={"count_star": 1.0})
        sampler = QuerySampler(pets_db, np.random.default_rng(7), config)
        queries = sampler.sample_many(20)
        count_star = sum(
            1
            for q in queries
            if isinstance(q, SelectQuery)
            and any(
                getattr(e, "func", None) == "count" for e in q.select
            )
        )
        assert count_star >= 18  # falls back to projection only on failure

    def test_three_way_join_template(self, pets_db):
        config = SamplerConfig(weights={"join_chain": 1.0})
        sampler = QuerySampler(pets_db, np.random.default_rng(8), config)
        queries = sampler.sample_many(10)
        assert any(
            isinstance(q, SelectQuery) and len(q.from_.tables) == 3
            for q in queries
        )

    def test_max_where_predicates(self, pets_db):
        config = SamplerConfig(
            weights={"projection_where": 1.0}, max_where_predicates=3
        )
        sampler = QuerySampler(pets_db, np.random.default_rng(9), config)
        counts = set()
        for __ in range(80):
            query = sampler.sample()
            if isinstance(query, SelectQuery) and query.where is not None:
                counts.add(len(query.where.predicates))
        assert 3 in counts
