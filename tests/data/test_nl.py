"""NL question renderer tests."""

import numpy as np
import pytest

from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.data.nl import NoiseConfig, QuestionRenderer, render_question
from repro.sqlkit.parser import parse_sql


@pytest.fixture(scope="module")
def pets_db():
    return build_domain(SPIDER_DOMAINS["pets"], seed=3)


def render(sql: str, db, seed: int = 0, noise: NoiseConfig | None = None):
    return render_question(
        parse_sql(sql), db.schema, np.random.default_rng(seed),
        noise or NoiseConfig(synonym_prob=0.0, drop_table_prob=0.0),
    )


class TestRendering:
    def test_simple_projection_mentions_column_and_table(self, pets_db):
        text = render("SELECT major FROM student", pets_db)
        assert "major" in text.lower()
        assert "student" in text.lower()

    def test_count_question(self, pets_db):
        text = render("SELECT count(*) FROM pets", pets_db)
        assert any(
            cue in text.lower() for cue in ("how many", "number of", "count")
        )

    def test_where_value_mentioned(self, pets_db):
        text = render(
            "SELECT lname FROM student WHERE major = 'Biology'", pets_db
        )
        assert "Biology" in text

    def test_comparison_direction_recoverable(self, pets_db):
        greater = render(
            "SELECT lname FROM student WHERE age > 20", pets_db, seed=1
        ).lower()
        less = render(
            "SELECT lname FROM student WHERE age < 20", pets_db, seed=1
        ).lower()
        assert greater != less

    def test_lte_distinct_from_lt(self, pets_db):
        lte = render(
            "SELECT lname FROM student WHERE age <= 20", pets_db, seed=2
        ).lower()
        assert "at most" in lte or "no more than" in lte

    def test_group_by_phrase(self, pets_db):
        text = render(
            "SELECT major, count(*) FROM student GROUP BY major", pets_db
        ).lower()
        assert any(cue in text for cue in ("for each", "per ", "grouped by"))

    def test_superlative(self, pets_db):
        text = render(
            "SELECT lname FROM student ORDER BY age DESC LIMIT 1", pets_db
        ).lower()
        assert "highest" in text or "has the" in text

    def test_except_phrase(self, pets_db):
        text = render(
            "SELECT major FROM student EXCEPT "
            "SELECT major FROM student WHERE age > 20",
            pets_db,
        ).lower()
        assert any(
            cue in text for cue in ("but not", "excluding", "not the ones")
        )

    def test_between_mentions_both_bounds(self, pets_db):
        text = render(
            "SELECT lname FROM student WHERE age BETWEEN 18 AND 24", pets_db
        )
        assert "18" in text and "24" in text

    def test_deterministic_per_seed(self, pets_db):
        a = render("SELECT major FROM student", pets_db, seed=7)
        b = render("SELECT major FROM student", pets_db, seed=7)
        assert a == b

    def test_seeds_vary_phrasing(self, pets_db):
        variants = {
            render("SELECT major FROM student", pets_db, seed=s)
            for s in range(12)
        }
        assert len(variants) > 1


class TestNoise:
    def test_synonyms_applied_with_high_probability(self, pets_db):
        noise = NoiseConfig(synonym_prob=1.0, drop_table_prob=0.0)
        texts = [
            render(
                "SELECT lname FROM student WHERE major = 'Biology'",
                pets_db,
                seed=s,
                noise=noise,
            ).lower()
            for s in range(10)
        ]
        assert any("field of study" in t for t in texts)

    def test_renderer_covers_all_sampled_queries(self, pets_db):
        sampler = QuerySampler(pets_db, np.random.default_rng(11))
        renderer = QuestionRenderer(
            pets_db.schema, np.random.default_rng(12)
        )
        for __ in range(60):
            question = renderer.render(sampler.sample())
            assert len(question) > 10
