"""Dataset container tests."""

from repro.data.dataset import Dataset, Example
from repro.sqlkit.hardness import Hardness
from repro.sqlkit.parser import parse_sql


class TestExample:
    def test_sql_text(self):
        example = Example(
            question="q", sql=parse_sql("SELECT a FROM t"), db_id="x"
        )
        assert example.sql_text == "SELECT a FROM t"

    def test_hardness_and_rating(self):
        example = Example(
            question="q",
            sql=parse_sql("SELECT a FROM t WHERE b = 1"),
            db_id="x",
        )
        assert example.hardness is Hardness.EASY
        assert example.rating == 200


class TestDataset:
    def test_len_and_iter(self, tiny_benchmark):
        dataset = tiny_benchmark.dev
        assert len(dataset) == len(list(dataset))

    def test_schema_accessor(self, tiny_benchmark):
        assert tiny_benchmark.dev.schema("pets").db_id == "pets"

    def test_by_hardness_partitions(self, tiny_benchmark):
        buckets = tiny_benchmark.dev.by_hardness()
        assert sum(len(v) for v in buckets.values()) == len(
            tiny_benchmark.dev
        )

    def test_subset_shares_databases(self, tiny_benchmark):
        subset = tiny_benchmark.dev.subset(
            lambda e: e.hardness is Hardness.EASY
        )
        assert subset.databases is tiny_benchmark.dev.databases
        assert all(e.hardness is Hardness.EASY for e in subset.examples)
