"""Autograd engine tests, including numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import Tensor, cosine_similarity


def numerical_gradient(fn, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(tensor.data)
    for i in range(tensor.data.size):
        original = tensor.data.flat[i]
        tensor.data.flat[i] = original + eps
        high = fn().item()
        tensor.data.flat[i] = original - eps
        low = fn().item()
        tensor.data.flat[i] = original
        grad.flat[i] = (high - low) / (2 * eps)
    return grad


def check_gradients(build_fn, *tensors: Tensor, atol: float = 1e-5):
    out = build_fn()
    out.backward()
    for tensor in tensors:
        numeric = numerical_gradient(build_fn, tensor)
        assert np.allclose(numeric, tensor.grad, atol=atol), (
            numeric, tensor.grad,
        )


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a * a).sum().backward()
        assert np.allclose(a.grad, [4, 6])

    def test_matmul_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 2)), requires_grad=True)
        out = a @ b
        assert out.shape == (3, 2)
        out.sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 2)

    def test_broadcasting_unbroadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, [3, 3, 3, 3])

    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_grad_accumulates_on_reuse(self):
        a = Tensor([1.0], requires_grad=True)
        (a + a).sum().backward()
        assert np.allclose(a.grad, [2.0])

    def test_detach_breaks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        detached = a.detach()
        assert not detached.requires_grad


class TestGradChecks:
    def test_composite_expression(self, rng):
        a = Tensor(rng.normal(size=5), requires_grad=True)
        b = Tensor(rng.normal(size=5), requires_grad=True)
        check_gradients(
            lambda: ((a @ b).tanh() * (a * a).sum()).sum(), a, b
        )

    def test_softmax(self, rng):
        a = Tensor(rng.normal(size=6), requires_grad=True)
        weights = Tensor(rng.normal(size=6))
        check_gradients(lambda: (a.softmax() * weights).sum(), a)

    def test_sigmoid_log_exp(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        check_gradients(
            lambda: (a.sigmoid().log() + (a * 0.1).exp()).sum(), a
        )

    def test_abs_relu(self, rng):
        a = Tensor(rng.normal(size=8) + 0.5, requires_grad=True)
        check_gradients(lambda: (a.abs() + a.relu()).sum(), a)

    def test_mean_axis(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: a.mean(axis=1).sum(), a)

    def test_norm(self, rng):
        a = Tensor(rng.normal(size=5), requires_grad=True)
        check_gradients(lambda: a.norm(), a)

    def test_getitem(self, rng):
        a = Tensor(rng.normal(size=6), requires_grad=True)
        check_gradients(lambda: (a[2:5] * a[0:3]).sum(), a)

    def test_stack_and_concat(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        check_gradients(
            lambda: (Tensor.stack([a, b]) * Tensor.concat([b, a]).reshape(2, 3)).sum(),
            a,
            b,
        )

    def test_division(self, rng):
        a = Tensor(rng.normal(size=4) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=4) + 3.0, requires_grad=True)
        check_gradients(lambda: (a / b).sum(), a, b)

    def test_clip_min(self, rng):
        a = Tensor(rng.normal(size=6) * 2, requires_grad=True)
        check_gradients(lambda: a.clip_min(0.3).sum(), a)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_cosine_similarity_gradients(self, seed):
        local_rng = np.random.default_rng(seed)
        a = Tensor(local_rng.normal(size=4) + 0.1, requires_grad=True)
        b = Tensor(local_rng.normal(size=4) + 0.1, requires_grad=True)
        check_gradients(lambda: cosine_similarity(a, b), a, b, atol=1e-4)


class TestCosine:
    def test_identical_vectors(self):
        a = Tensor([1.0, 2.0, 3.0])
        assert cosine_similarity(a, a).item() == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(
            Tensor([1.0, 0.0]), Tensor([0.0, 1.0])
        ).item() == pytest.approx(0.0, abs=1e-6)
