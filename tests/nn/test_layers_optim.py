"""Layer and optimizer tests."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import MLP, Linear, Module
from repro.nn.losses import mse_loss
from repro.nn.optim import SGD, Adam


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_parameters_collected(self, rng):
        layer = Linear(4, 3, rng)
        assert len(layer.parameters()) == 2

    def test_bias_starts_zero(self, rng):
        layer = Linear(4, 3, rng)
        assert np.allclose(layer.bias.data, 0.0)


class TestMLP:
    def test_needs_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_parameter_count(self, rng):
        mlp = MLP([4, 8, 2], rng)
        assert len(mlp.parameters()) == 4

    def test_nested_module_collection(self, rng):
        class Wrapper(Module):
            def __init__(self):
                self.inner = MLP([2, 2], rng)
                self.towers = [Linear(2, 2, rng), Linear(2, 2, rng)]

        assert len(Wrapper().parameters()) == 6

    def test_zero_grad(self, rng):
        mlp = MLP([3, 2], rng)
        out = mlp(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert mlp.layers[0].weight.grad is not None
        mlp.zero_grad()
        assert mlp.layers[0].weight.grad is None


class TestOptimizers:
    def _regression_task(self, rng):
        features = rng.normal(size=(64, 5))
        true_weights = rng.normal(size=5)
        targets = features @ true_weights
        return features, targets

    @pytest.mark.parametrize("optimizer_cls", [SGD, Adam])
    def test_fits_linear_regression(self, optimizer_cls, rng):
        features, targets = self._regression_task(rng)
        model = Linear(5, 1, rng)
        lr = 0.05 if optimizer_cls is SGD else 0.05
        optimizer = optimizer_cls(model.parameters(), lr=lr)
        first = None
        for __ in range(300):
            predictions = model(Tensor(features)).reshape(-1)
            loss = mse_loss(predictions, Tensor(targets))
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.05

    def test_adam_skips_gradless_params(self, rng):
        a = Tensor(np.ones(3), requires_grad=True)
        optimizer = Adam([a], lr=0.1)
        optimizer.step()  # no grad: must not move or crash
        assert np.allclose(a.data, 1.0)

    def test_weight_decay_shrinks(self, rng):
        a = Tensor(np.ones(3) * 10, requires_grad=True)
        a.grad = np.zeros(3)
        SGD([a], lr=0.1, weight_decay=0.5).step()
        assert np.all(a.data < 10)
