"""Loss function tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import Tensor
from repro.nn.losses import (
    bce_with_logits,
    mse_loss,
    neural_ndcg_loss,
    neural_sort,
    triplet_loss,
)


class TestMSE:
    def test_zero_at_target(self):
        x = Tensor([1.0, 2.0])
        assert mse_loss(x, Tensor([1.0, 2.0])).item() == 0.0

    def test_value(self):
        loss = mse_loss(Tensor([0.0, 0.0]), Tensor([2.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)


class TestBCE:
    def test_confident_correct_is_small(self):
        loss = bce_with_logits(Tensor([10.0, -10.0]), Tensor([1.0, 0.0]))
        assert loss.item() < 0.01

    def test_confident_wrong_is_large(self):
        loss = bce_with_logits(Tensor([10.0]), Tensor([0.0]))
        assert loss.item() > 5.0

    def test_matches_reference(self):
        logits = np.array([0.3, -0.7, 1.5])
        targets = np.array([1.0, 0.0, 1.0])
        expected = np.mean(
            np.maximum(logits, 0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        loss = bce_with_logits(Tensor(logits), Tensor(targets))
        assert loss.item() == pytest.approx(expected)

    def test_numerically_stable_extremes(self):
        loss = bce_with_logits(Tensor([500.0, -500.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestTriplet:
    def test_separated_pair_zero_loss(self):
        anchor = Tensor([1.0, 0.0])
        positive = Tensor([1.0, 0.1])
        negative = Tensor([-1.0, 0.0])
        assert triplet_loss(anchor, positive, negative).item() == 0.0

    def test_violating_pair_positive_loss(self):
        anchor = Tensor([1.0, 0.0])
        positive = Tensor([-1.0, 0.0])
        negative = Tensor([1.0, 0.1])
        assert triplet_loss(anchor, positive, negative).item() > 0.0


class TestNeuralSort:
    def test_low_temperature_sorts(self):
        scores = Tensor(np.array([3.0, 1.0, 2.0]))
        permutation = neural_sort(scores, tau=0.05)
        gains = permutation @ Tensor(np.array([30.0, 10.0, 20.0]))
        assert np.allclose(gains.numpy(), [30.0, 20.0, 10.0], atol=0.01)

    def test_rows_are_stochastic(self):
        permutation = neural_sort(Tensor([0.5, -1.0, 2.0]), tau=1.0)
        assert np.allclose(permutation.numpy().sum(axis=1), 1.0)


class TestNeuralNDCG:
    def test_perfect_ranking_near_zero(self):
        relevance = np.array([3.0, 2.0, 1.0, 0.0])
        scores = Tensor(np.array([4.0, 3.0, 2.0, 1.0]))
        loss = neural_ndcg_loss(scores, relevance, tau=0.05)
        assert loss.item() == pytest.approx(0.0, abs=0.01)

    def test_inverted_ranking_is_worse(self):
        relevance = np.array([3.0, 2.0, 1.0, 0.0])
        good = neural_ndcg_loss(
            Tensor(np.array([4.0, 3.0, 2.0, 1.0])), relevance, tau=0.1
        )
        bad = neural_ndcg_loss(
            Tensor(np.array([1.0, 2.0, 3.0, 4.0])), relevance, tau=0.1
        )
        assert bad.item() > good.item()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            neural_ndcg_loss(Tensor(np.zeros(0)), np.zeros(0))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_loss_bounded_below_by_zeroish(self, seed):
        local = np.random.default_rng(seed)
        relevance = local.uniform(0, 3, size=6)
        scores = Tensor(local.normal(size=6))
        loss = neural_ndcg_loss(scores, relevance, tau=0.5)
        assert loss.item() > -0.05

    def test_trainable(self, rng):
        from repro.nn.layers import MLP
        from repro.nn.optim import Adam

        features = rng.normal(size=(12, 4))
        relevance = rng.uniform(0, 3, size=12)
        mlp = MLP([4, 8, 1], rng)
        optimizer = Adam(mlp.parameters(), lr=0.02)
        first = None
        for __ in range(120):
            scores = mlp(Tensor(features)).reshape(-1)
            loss = neural_ndcg_loss(scores, relevance, tau=0.5)
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first
