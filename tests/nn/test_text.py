"""Text featurisation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.encoder import EncoderTower
from repro.nn.text import (
    HashingVectorizer,
    TextFeaturizer,
    text_features,
    tokenize_text,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize_text("Hello World") == ["hello", "world"]

    def test_alphanumeric_runs(self):
        assert tokenize_text("pet_age > 3.5!") == ["pet", "age", "3", "5"]

    def test_empty(self):
        assert tokenize_text("...") == []


class TestFeatures:
    def test_includes_bigrams(self):
        features = text_features("big cat", include_chars=False)
        assert "big_cat" in features

    def test_char_trigrams_optional(self):
        with_chars = text_features("cat")
        without = text_features("cat", include_chars=False)
        assert len(with_chars) > len(without)


class TestHashingVectorizer:
    def test_deterministic(self):
        v = HashingVectorizer(buckets=64)
        assert np.array_equal(v.transform("find cats"), v.transform("find cats"))

    def test_unit_norm(self):
        v = HashingVectorizer(buckets=64)
        assert np.linalg.norm(v.transform("some text here")) == pytest.approx(1.0)

    def test_empty_text_is_zero(self):
        v = HashingVectorizer(buckets=64)
        assert np.linalg.norm(v.transform("")) == 0.0


class TestTextFeaturizer:
    def test_idf_downweights_common_tokens(self):
        corpus = [f"the common word {i}" for i in range(20)]
        featurizer = TextFeaturizer(buckets=512, include_chars=False).fit(corpus)
        common = featurizer.transform("common")
        rare = featurizer.transform("zebra")
        # Sparse transform; compare cosine to a mixed sentence.
        mixed = featurizer.transform("common zebra")
        assert mixed @ rare > mixed @ common

    def test_transform_many_shape(self):
        featurizer = TextFeaturizer(buckets=128).fit(["a b", "c d"])
        matrix = featurizer.transform_many(["a", "b", "c"])
        assert matrix.shape == (3, 128)

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="abc xyz", min_size=0, max_size=30))
    def test_norm_at_most_one(self, text):
        featurizer = TextFeaturizer(buckets=64).fit(["abc xyz"])
        norm = np.linalg.norm(featurizer.transform(text))
        assert norm == pytest.approx(1.0) or norm == 0.0


class TestEncoderTower:
    def test_embedding_shape(self, rng):
        featurizer = TextFeaturizer(buckets=128).fit(["hello world"])
        tower = EncoderTower(featurizer, embed_dim=16, rng=rng)
        assert tower.encode("hello").shape == (16,)

    def test_batch_encoding(self, rng):
        featurizer = TextFeaturizer(buckets=128).fit(["hello world"])
        tower = EncoderTower(featurizer, embed_dim=16, rng=rng)
        out = tower.encode_many(["a", "b", "c"])
        assert out.shape == (3, 16)

    def test_trainable_parameters(self, rng):
        featurizer = TextFeaturizer(buckets=128).fit(["x"])
        tower = EncoderTower(featurizer, embed_dim=8, rng=rng)
        assert len(tower.parameters()) == 4
