"""repolint: per-rule unit tests, pragma handling, src/ enforcement.

The final test is the enforcement gate: the repo's own ``src/`` tree must
stay clean under every repolint rule, so an invariant regression fails
tier-1 rather than waiting for CI.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

pytestmark = pytest.mark.lint

REPO = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "repolint.py"

spec = importlib.util.spec_from_file_location("repolint", TOOL)
repolint = importlib.util.module_from_spec(spec)
sys.modules["repolint"] = repolint  # dataclasses resolve the module by name
spec.loader.exec_module(repolint)


def rules_of(source: str) -> list[str]:
    return [f.rule for f in repolint.lint_source(textwrap.dedent(source))]


# ----------------------------------------------------------------------
# wall-clock


def test_wall_clock_call_flagged():
    assert rules_of("import time\nstamp = time.time()\n") == ["wall-clock"]


def test_datetime_now_flagged():
    source = "import datetime\nnow = datetime.datetime.now()\n"
    assert rules_of(source) == ["wall-clock"]


def test_clock_reference_as_default_allowed():
    source = """
        import time

        def __init__(self, clock=None):
            self._clock = clock if clock is not None else time.time
    """
    assert rules_of(source) == []


def test_perf_counter_not_flagged():
    # Monotonic duration measurement is fine; the rule targets wall time.
    assert rules_of("import time\nt = time.perf_counter()\n") == []


# ----------------------------------------------------------------------
# broad-except


def test_broad_except_flagged():
    source = """
        try:
            pass
        except Exception:
            pass
    """
    assert rules_of(source) == ["broad-except"]


def test_bare_except_flagged():
    assert rules_of("try:\n    pass\nexcept:\n    pass\n") == ["broad-except"]


def test_narrow_except_allowed():
    assert rules_of("try:\n    pass\nexcept ValueError:\n    pass\n") == []


def test_pragma_on_line_suppresses():
    source = """
        try:
            pass
        except Exception:  # repolint: allow[broad-except] — isolation
            pass
    """
    assert rules_of(source) == []


def test_pragma_on_line_above_suppresses():
    source = """
        try:
            pass
        # repolint: allow[broad-except] — isolation boundary
        except Exception:
            pass
    """
    assert rules_of(source) == []


def test_pragma_for_other_rule_does_not_suppress():
    source = """
        try:
            pass
        except Exception:  # repolint: allow[wall-clock]
            pass
    """
    assert rules_of(source) == ["broad-except"]


# ----------------------------------------------------------------------
# lock-callback


def test_callback_under_lock_flagged():
    source = """
        class Breaker:
            def trip(self):
                with self._lock:
                    self.on_transition("open")
    """
    assert rules_of(source) == ["lock-callback"]


def test_notify_under_lock_flagged():
    source = """
        class Breaker:
            def trip(self):
                with self._lock:
                    self._notify()
    """
    assert rules_of(source) == ["lock-callback"]


def test_callback_after_lock_allowed():
    source = """
        class Breaker:
            def trip(self):
                with self._lock:
                    self._pending.append("open")
                self.on_transition("open")
    """
    assert rules_of(source) == []


def test_nested_function_resets_lock_context():
    # A function *defined* inside a with-lock body runs later, outside
    # the lock; calls in its body must not be flagged.
    source = """
        class Service:
            def submit(self):
                with self._lock:
                    def done():
                        self.on_finish()
                    self._callbacks.append(done)
    """
    assert rules_of(source) == []


# ----------------------------------------------------------------------
# contextvar-reset


def test_token_without_reset_flagged():
    source = """
        def use(tracer):
            token = _TRACER.set(tracer)
            work()
    """
    assert rules_of(source) == ["contextvar-reset"]


def test_token_reset_in_finally_allowed():
    source = """
        def use(tracer):
            token = _TRACER.set(tracer)
            try:
                work()
            finally:
                _TRACER.reset(token)
    """
    assert rules_of(source) == []


def test_non_token_set_call_ignored():
    assert rules_of("def f(s):\n    found = s.set(1)\n    return found\n") == []


# ----------------------------------------------------------------------
# fsync-rename


def test_rename_without_fsync_flagged():
    source = """
        import os

        def promote(a, b):
            os.replace(a, b)
    """
    assert rules_of(source) == ["fsync-rename"]


def test_rename_with_fsync_allowed():
    source = """
        import os

        def promote(handle, a, b):
            os.fsync(handle.fileno())
            os.replace(a, b)
    """
    assert rules_of(source) == []


def test_rename_with_fsync_helper_allowed():
    source = """
        import os

        def promote(a, b):
            os.rename(a, b)
            _fsync_dir(b)
    """
    assert rules_of(source) == []


# ----------------------------------------------------------------------
# unseeded-random


def test_module_level_random_flagged():
    assert rules_of("import random\nx = random.random()\n") == [
        "unseeded-random"
    ]


def test_unseeded_random_instance_flagged():
    assert rules_of("import random\nrng = random.Random()\n") == [
        "unseeded-random"
    ]


def test_seeded_random_instance_allowed():
    assert rules_of("import random\nrng = random.Random(7)\n") == []


def test_unseeded_default_rng_flagged():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert rules_of(source) == ["unseeded-random"]


def test_seeded_default_rng_allowed():
    source = "import numpy as np\nrng = np.random.default_rng(11)\n"
    assert rules_of(source) == []


def test_legacy_numpy_global_rng_flagged():
    source = "import numpy as np\nx = np.random.rand(3)\n"
    assert rules_of(source) == ["unseeded-random"]


# ----------------------------------------------------------------------
# Finding plumbing + CLI.


def test_findings_sorted_and_rendered():
    source = "import time\nb = time.time()\na = time.time()\n"
    findings = repolint.lint_source(source, "mod.py")
    assert [f.line for f in findings] == [2, 3]
    assert findings[0].render().startswith("mod.py:2: [wall-clock]")
    assert findings[0].as_dict()["rule"] == "wall-clock"


def test_cli_clean_run(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "0 finding(s)" in proc.stdout


def test_cli_json_output(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nx = time.time()\n")
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(bad), "--format", "json"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "wall-clock"
    assert payload["findings"][0]["line"] == 2


def test_cli_list_rules():
    proc = subprocess.run(
        [sys.executable, str(TOOL), "--list"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    for rule in repolint.RULES:
        assert rule in proc.stdout


# ----------------------------------------------------------------------
# Enforcement: the repo's own source tree must stay clean.


def test_src_tree_is_clean():
    findings = repolint.lint_paths([str(REPO / "src")])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"repolint findings in src/:\n{rendered}"


def test_tools_tree_is_clean():
    findings = repolint.lint_paths([str(REPO / "tools")])
    assert findings == [], [f.render() for f in findings]


# ----------------------------------------------------------------------
# metric-catalog (opt-in via --metrics-doc)


def test_collect_metric_names_only_sees_factory_calls(tmp_path):
    source = textwrap.dedent(
        """
        registry.counter("metasql_good_total", "h").inc()
        registry.gauge("metasql_depth", "h", labelnames=("t",))
        registry.histogram("metasql_lat_seconds", "h")
        name = "metasql_not_a_metric"          # plain string: ignored
        lookup = registry.get("metasql_fetched")  # not a factory: ignored
        registry.counter(dynamic_name, "h")       # non-literal: ignored
        """
    )
    (tmp_path / "mod.py").write_text(source)
    names = repolint.collect_metric_names([str(tmp_path)])
    assert sorted(names) == [
        "metasql_depth",
        "metasql_good_total",
        "metasql_lat_seconds",
    ]
    path, line = names["metasql_good_total"][0]
    assert path.endswith("mod.py") and line == 2


def test_metric_catalog_flags_undocumented_names(tmp_path):
    (tmp_path / "mod.py").write_text(
        'registry.counter("metasql_documented_total", "h")\n'
        'registry.counter("metasql_missing_total", "h")\n'
    )
    doc = tmp_path / "DESIGN.md"
    doc.write_text("| `metasql_documented_total` | counts things |\n")
    findings = repolint.check_metric_catalog(
        [str(tmp_path)], [str(doc)]
    )
    assert [f.rule for f in findings] == ["metric-catalog"]
    assert "metasql_missing_total" in findings[0].message
    assert findings[0].line == 2


def test_metric_catalog_clean_when_documented(tmp_path):
    (tmp_path / "mod.py").write_text(
        'registry.counter("metasql_documented_total", "h")\n'
    )
    doc = tmp_path / "DESIGN.md"
    doc.write_text("`metasql_documented_total` is documented here\n")
    assert (
        repolint.check_metric_catalog([str(tmp_path)], [str(doc)]) == []
    )


def test_cli_metrics_doc_flag(tmp_path):
    (tmp_path / "mod.py").write_text(
        'registry.counter("metasql_orphan_total", "h")\n'
    )
    doc = tmp_path / "DESIGN.md"
    doc.write_text("no metrics here\n")
    proc = subprocess.run(
        [
            sys.executable,
            str(TOOL),
            str(tmp_path),
            "--metrics-doc",
            str(doc),
            "--format",
            "json",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "metric-catalog"


def test_every_constructed_metric_is_catalogued():
    findings = repolint.check_metric_catalog(
        [str(REPO / "src")], [str(REPO / "DESIGN.md")]
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"undocumented metrics:\n{rendered}"


# ----------------------------------------------------------------------
# event-catalog (opt-in via --events-doc)


def test_collect_event_names_only_sees_dict_literals(tmp_path):
    source = textwrap.dedent(
        """
        journal.append({"event": "tenant_swap", "tenant": t})
        journal.append({"event": "translate", "ok": True})
        kind = record.get("event")            # read, not emission
        other = {"type": "not_an_event"}      # different key: ignored
        dyn = {"event": name}                 # non-literal: ignored
        """
    )
    (tmp_path / "mod.py").write_text(source)
    names = repolint.collect_event_names([str(tmp_path)])
    assert sorted(names) == ["tenant_swap", "translate"]
    path, line = names["tenant_swap"][0]
    assert path.endswith("mod.py") and line == 2


def test_event_catalog_flags_undocumented_names(tmp_path):
    (tmp_path / "mod.py").write_text(
        'a = {"event": "documented"}\nb = {"event": "mystery"}\n'
    )
    doc = tmp_path / "DESIGN.md"
    doc.write_text("| `documented` | emitted on every request |\n")
    findings = repolint.check_event_catalog([str(tmp_path)], [str(doc)])
    assert [f.rule for f in findings] == ["event-catalog"]
    assert "mystery" in findings[0].message
    assert findings[0].line == 2


def test_event_catalog_requires_code_formatting(tmp_path):
    # "eval" is an English word; prose mentions must not satisfy the
    # catalog — the doc has to carry the name as code.
    (tmp_path / "mod.py").write_text('a = {"event": "eval"}\n')
    doc = tmp_path / "DESIGN.md"
    doc.write_text("we evaluate things during evaluation\n")
    findings = repolint.check_event_catalog([str(tmp_path)], [str(doc)])
    assert [f.rule for f in findings] == ["event-catalog"]


def test_cli_events_doc_flag(tmp_path):
    (tmp_path / "mod.py").write_text('a = {"event": "orphan_event"}\n')
    doc = tmp_path / "DESIGN.md"
    doc.write_text("no events here\n")
    proc = subprocess.run(
        [
            sys.executable,
            str(TOOL),
            str(tmp_path),
            "--events-doc",
            str(doc),
            "--format",
            "json",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "event-catalog"


def test_every_emitted_event_is_catalogued():
    findings = repolint.check_event_catalog(
        [str(REPO / "src")], [str(REPO / "DESIGN.md")]
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"undocumented journal events:\n{rendered}"


# ----------------------------------------------------------------------
# stale-pragma (opt-in via --strict-pragmas)


def test_stale_pragma_flagged():
    source = """
        x = 1  # repolint: allow[wall-clock]
    """
    findings = repolint.lint_source(
        textwrap.dedent(source), strict_pragmas=True
    )
    assert [f.rule for f in findings] == ["stale-pragma"]
    assert "wall-clock" in findings[0].message


def test_useful_pragma_not_stale():
    source = """
        import time
        stamp = time.time()  # repolint: allow[wall-clock]
    """
    assert (
        repolint.lint_source(textwrap.dedent(source), strict_pragmas=True)
        == []
    )


def test_pragma_above_finding_not_stale():
    source = """
        import time
        # repolint: allow[wall-clock]
        stamp = time.time()
    """
    assert (
        repolint.lint_source(textwrap.dedent(source), strict_pragmas=True)
        == []
    )


def test_unknown_rule_pragma_flagged():
    source = "x = 1  # repolint: allow[no-such-rule]\n"
    findings = repolint.lint_source(source, strict_pragmas=True)
    assert [f.rule for f in findings] == ["stale-pragma"]
    assert "unknown rule" in findings[0].message


def test_catalog_rule_pragma_always_stale():
    # metric-catalog is doc-driven and never honours pragmas, so a
    # pragma naming it is dead weight.
    source = 'registry.counter("metasql_x_total", "h")  # repolint: allow[metric-catalog]\n'
    findings = repolint.lint_source(source, strict_pragmas=True)
    assert [f.rule for f in findings] == ["stale-pragma"]
    assert "no effect" in findings[0].message


def test_pragma_in_string_not_parsed():
    # Pragma-shaped text inside a string is neither honoured as a
    # suppression nor flagged as stale.
    source = (
        "import time\n"
        'doc = "# repolint: allow[wall-clock]"\n'
        "stamp = time.time()\n"
    )
    findings = repolint.lint_source(source, strict_pragmas=True)
    assert [f.rule for f in findings] == ["wall-clock"]


def test_cli_strict_pragmas_flag(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1  # repolint: allow[broad-except]\n")
    proc = subprocess.run(
        [sys.executable, str(TOOL), str(tmp_path), "--strict-pragmas"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "stale-pragma" in proc.stdout


def test_src_and_tools_have_no_stale_pragmas():
    findings = repolint.lint_paths(
        [str(REPO / "src"), str(REPO / "tools")], strict_pragmas=True
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"stale pragmas:\n{rendered}"
