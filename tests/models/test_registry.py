"""Model registry tests."""

import pytest

from repro.models.llm import FewShotLLM
from repro.models.registry import DISPLAY_NAMES, MODEL_PRESETS, create_model
from repro.models.seq2seq import GrammarSeq2Seq


class TestRegistry:
    def test_all_six_models(self):
        assert sorted(MODEL_PRESETS) == [
            "bridge", "chatgpt", "gap", "gpt4", "lgesql", "resdsql",
        ]

    def test_seq2seq_presets(self):
        for name in ("bridge", "gap", "lgesql", "resdsql"):
            model = create_model(name)
            assert isinstance(model, GrammarSeq2Seq)
            assert not isinstance(model, FewShotLLM)

    def test_llm_presets(self):
        for name in ("chatgpt", "gpt4"):
            assert isinstance(create_model(name), FewShotLLM)

    def test_value_prediction_profile(self):
        """GAP/LGESQL emit placeholders; the others predict values."""
        assert not create_model("gap").predicts_values
        assert not create_model("lgesql").predicts_values
        assert create_model("bridge").predicts_values
        assert create_model("resdsql").predicts_values
        assert create_model("gpt4").predicts_values

    def test_case_insensitive(self):
        assert create_model("LGESQL").name == "lgesql"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown model"):
            create_model("t5")

    def test_fresh_instances(self):
        assert create_model("bridge") is not create_model("bridge")

    def test_display_names_cover_presets(self):
        assert set(DISPLAY_NAMES) == set(MODEL_PRESETS)
