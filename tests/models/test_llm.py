"""FewShotLLM tests: retrieval, prompts (Table 3), style variants."""

import pytest

from repro.models.llm import (
    FewShotLLM,
    _rewrite_between,
    _rewrite_count_star,
    _rewrite_superlative,
    _style_variant,
)
from repro.models.registry import create_model
from repro.schema.executor import execute
from repro.sqlkit.compare import exact_match
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql


@pytest.fixture(scope="module")
def llm(tiny_benchmark):
    model = create_model("gpt4")
    model.fit(tiny_benchmark.train)
    return model


class TestRetrieval:
    def test_returns_k_demonstrations(self, llm):
        demos = llm.retrieve("How many students are there?", k=5)
        assert len(demos) == 5

    def test_similar_questions_retrieved(self, llm):
        demos = llm.retrieve("How many students are there?", k=9)
        questions = " ".join(d.question.lower() for d in demos)
        assert "how many" in questions or "number" in questions

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            create_model("gpt4").retrieve("anything")


class TestPrompt:
    def test_table3_structure(self, llm, tiny_benchmark):
        from repro.core.metadata import QueryMetadata

        db = tiny_benchmark.dev.database("pets")
        metadata = QueryMetadata(
            tags=frozenset({"project", "where"}), rating=200
        )
        prompt = llm.build_prompt(
            "Return the names of students", db, metadata
        )
        assert "#### Give you database schema" in prompt
        assert "Schema: " in prompt
        assert "The target SQL only uses the following SQL keywords" in prompt
        assert "difficulty rating of the target SQL is 200" in prompt
        assert prompt.rstrip().endswith("#### The target SQL is:")

    def test_prompt_without_metadata(self, llm, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        prompt = llm.build_prompt("Return the names of students", db)
        assert "difficulty rating" not in prompt


class TestStyleVariants:
    def test_between_rewrite_execution_equivalent(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population BETWEEN 50000 AND 200000"
        )
        variant = _rewrite_between(query, world_db)
        assert not exact_match(variant, query)
        assert sorted(execute(variant, world_db)) == sorted(
            execute(query, world_db)
        )

    def test_count_star_rewrite_execution_equivalent(self, world_db):
        query = parse_sql("SELECT count(*) FROM country")
        variant = _rewrite_count_star(query, world_db)
        assert not exact_match(variant, query)
        assert execute(variant, world_db) == execute(query, world_db)

    def test_superlative_rewrite_execution_equivalent(self, world_db):
        query = parse_sql(
            "SELECT population FROM country ORDER BY population DESC LIMIT 1"
        )
        variant = _rewrite_superlative(query, world_db)
        assert not exact_match(variant, query)
        assert execute(variant, world_db) == execute(query, world_db)

    def test_no_variant_for_plain_query(self, world_db, rng):
        query = parse_sql("SELECT name FROM country")
        assert _style_variant(query, world_db, rng) is None

    def test_int_cmp_rewrite_execution_equivalent(self, world_db):
        from repro.models.llm import _can_rewrite_int_cmp, _rewrite_int_cmp

        query = parse_sql(
            "SELECT name FROM country WHERE country.population >= 103000"
        )
        assert _can_rewrite_int_cmp(query, world_db)
        variant = _rewrite_int_cmp(query, world_db)
        assert not exact_match(variant, query)
        assert sorted(execute(variant, world_db)) == sorted(
            execute(query, world_db)
        )

    def test_int_cmp_skips_float_columns(self, world_db):
        from repro.models.llm import _can_rewrite_int_cmp

        # percentage holds floats: off-by-one rewriting would be wrong.
        query = parse_sql(
            "SELECT language FROM countrylanguage "
            "WHERE countrylanguage.percentage >= 10"
        )
        assert not _can_rewrite_int_cmp(query, world_db)


class TestTranslation:
    def test_decodes_candidates(self, llm, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        candidates = llm.translate(
            "How many students are there?", db, beam_size=5
        )
        assert candidates

    def test_metadata_always_honoured(self, llm, tiny_benchmark):
        """LLMs take metadata via the prompt: no fine-tuning required."""
        assert llm.metadata_trained

    def test_higher_diversity_than_seq2seq(
        self, llm, fitted_lgesql, tiny_benchmark
    ):
        from repro.models.sketch import extract_sketch

        dev = tiny_benchmark.dev
        llm_shapes = set()
        seq_shapes = set()
        for example in dev.examples[:30]:
            db = dev.database(example.db_id)
            for c in llm.translate(example.question, db, beam_size=5):
                llm_shapes.add(extract_sketch(c.query))
            for c in fitted_lgesql.translate(
                example.question, db, beam_size=5
            ):
                seq_shapes.add(extract_sketch(c.query))
        assert len(llm_shapes) >= len(seq_shapes) * 0.5
