"""Sketch extraction and sketch-model tests."""

import pytest

from repro.models.sketch import Sketch, SketchModel, extract_sketch
from repro.sqlkit.parser import parse_sql


def sketch(sql: str) -> Sketch:
    return extract_sketch(parse_sql(sql))


class TestExtraction:
    def test_plain(self):
        s = sketch("SELECT a FROM t")
        assert s.shape == "plain"
        assert s.n_select == 1
        assert s.n_predicates == 0

    def test_predicate_kinds_sorted(self):
        s = sketch("SELECT a FROM t WHERE b > 1 AND c = 'x'")
        assert s.predicate_kinds == ("cmp", "eq")

    def test_or_flag(self):
        assert sketch("SELECT a FROM t WHERE b = 1 OR c = 2").has_or

    def test_setop_shape(self):
        s = sketch("SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 1")
        assert s.shape == "setop:except"

    def test_nested_shapes(self):
        assert sketch(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)"
        ).shape == "nested:in"
        assert sketch(
            "SELECT a FROM t WHERE b NOT IN (SELECT c FROM u)"
        ).shape == "nested:not_in"
        assert sketch(
            "SELECT a FROM t WHERE b > (SELECT avg(b) FROM t)"
        ).shape == "nested:scalar"

    def test_from_subquery_shape(self):
        s = sketch("SELECT count(*) FROM (SELECT a FROM t GROUP BY a)")
        assert s.shape == "from_subquery"

    def test_group_order_limit_facets(self):
        s = sketch(
            "SELECT a, count(*) FROM t GROUP BY a "
            "ORDER BY count(*) DESC LIMIT 1"
        )
        assert s.has_group
        assert s.order == "desc"
        assert s.limit == "one"
        assert s.order_on_agg
        assert s.count_star

    def test_select_aggs(self):
        s = sketch("SELECT min(a), max(b) FROM t")
        assert s.select_aggs == ("max", "min")


class TestOperatorTags:
    def test_plain_tags(self):
        assert sketch("SELECT a FROM t").operator_tags() == {"project"}

    def test_where_join_tags(self):
        tags = sketch(
            "SELECT t.a FROM t JOIN u ON t.id = u.tid WHERE u.b = 1"
        ).operator_tags()
        assert {"project", "join", "where"} <= tags

    def test_except_tags(self):
        tags = sketch(
            "SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 1"
        ).operator_tags()
        assert "except" in tags

    def test_subquery_tag(self):
        tags = sketch(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)"
        ).operator_tags()
        assert {"subquery", "where"} <= tags

    def test_agg_tag(self):
        assert "agg" in sketch("SELECT count(*) FROM t").operator_tags()


class TestSketchModel:
    @pytest.fixture(scope="class")
    def model(self, tiny_benchmark):
        return SketchModel().fit(tiny_benchmark.train)

    def test_signatures_nonempty(self, model):
        assert len(model.signatures) > 10

    def test_scores_sorted(self, model):
        scored = model.score_sketches("how many students are there")
        values = [s for s, __ in scored]
        assert values == sorted(values, reverse=True)

    def test_count_question_prefers_count_sketch(self, model):
        # The NB posterior alone should surface a counting sketch near the
        # top; exact top-1 needs the cue blending (tested below).
        scored = model.score_sketches("How many pets are there?")
        assert any(sk.count_star for __, sk in scored[:10])

    def test_candidate_restriction(self, model):
        only = [model.signatures[0]]
        scored = model.score_sketches("anything", candidates=only)
        assert len(scored) == 1

    def test_cue_blending_changes_ranking(self, model, tiny_benchmark):
        from repro.models.cues import extract_cues

        db = tiny_benchmark.train.database("pets")
        question = "How many students have a dog?"
        plain = model.score_sketches(question)[0][1]
        with_cues = model.score_sketches(
            question, cues=extract_cues(question, db)
        )[0][1]
        assert with_cues.count_star
