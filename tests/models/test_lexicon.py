"""Lexicon alignment-model tests."""

import pytest

from repro.models.lexicon import Lexicon, content_tokens


class TestContentTokens:
    def test_stopwords_removed(self):
        assert content_tokens("What are the names of all singers") == [
            "names", "singers",
        ]

    def test_keeps_values(self):
        assert "resolute" in content_tokens("ships named Resolute")


class TestLexicon:
    @pytest.fixture(scope="class")
    def lexicon(self, tiny_benchmark):
        return Lexicon().fit(tiny_benchmark.train)

    def test_learned_table_association(self, lexicon, tiny_benchmark):
        schema = tiny_benchmark.train.schema("pets")
        student = schema.table("student")
        pets = schema.table("pets")
        question = "What is the major of every student?"
        assert lexicon.score_table(question, "pets", student) > lexicon.score_table(
            question, "pets", pets
        )

    def test_synonym_overlap_scores(self, lexicon, tiny_benchmark):
        schema = tiny_benchmark.train.schema("battle_death")
        ship = schema.table("ship")
        question = "List all vessels"  # synonym of ship
        battle = schema.table("battle")
        assert lexicon.score_table(question, "battle_death", ship) > (
            lexicon.score_table(question, "battle_death", battle)
        )

    def test_column_scores_favor_mentioned(self, lexicon, tiny_benchmark):
        schema = tiny_benchmark.train.schema("pets")
        student = schema.table("student")
        question = "Find the age of students"
        age = lexicon.score_column(question, "pets", student, "age")
        major = lexicon.score_column(question, "pets", student, "major")
        assert age > major

    def test_rank_columns_sorted(self, lexicon, tiny_benchmark):
        schema = tiny_benchmark.train.schema("pets")
        ranked = lexicon.rank_columns(
            "student ages", "pets", schema, ["student"]
        )
        scores = [s for s, __, __ in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_unseen_schema_uses_name_overlap(self, lexicon, world_db):
        """Zero-shot: identifier matching works without any training."""
        country = world_db.schema.table("country")
        cl = world_db.schema.table("countrylanguage")
        question = "What is the population of each country?"
        assert lexicon.score_table(question, "world", country) > 0
        assert lexicon.score_column(
            question, "world", country, "population"
        ) > lexicon.score_column(question, "world", cl, "percentage")
