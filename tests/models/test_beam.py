"""Generic beam-search tests."""

from repro.models.beam import Beam, expand, run


def make_expander(choices):
    def expander(state):
        return [(lp, state + [c]) for lp, c in choices]

    return expander


class TestExpand:
    def test_keeps_top_width(self):
        beams = [Beam(score=0.0, state=[])]
        expander = make_expander([(-1.0, "a"), (-0.5, "b"), (-2.0, "c")])
        result = expand(beams, expander, width=2)
        assert [b.state[-1] for b in result] == ["b", "a"]

    def test_empty_expansion_keeps_state(self):
        beams = [Beam(score=-1.0, state=["x"])]
        result = expand(beams, lambda s: [], width=3)
        assert result == beams

    def test_scores_accumulate(self):
        beams = [Beam(score=-1.0, state=[])]
        result = expand(beams, make_expander([(-0.5, "a")]), width=1)
        assert result[0].score == -1.5


class TestRun:
    def test_multi_stage_best_path(self):
        stages = [
            make_expander([(-0.1, "a1"), (-1.0, "a2")]),
            make_expander([(-0.2, "b1"), (-0.05, "b2")]),
        ]
        final = run([Beam(score=0.0, state=[])], stages, width=4)
        assert final[0].state == ["a1", "b2"]

    def test_width_one_is_greedy(self):
        stages = [
            make_expander([(-0.1, "good"), (-0.2, "trap")]),
            # After 'good' the only continuation is expensive; greedy
            # cannot recover — the hallmark of local decoding.
        ]
        final = run([Beam(score=0.0, state=[])], stages, width=1)
        assert len(final) == 1
        assert final[0].state == ["good"]

    def test_initial_beams_pruned(self):
        initial = [Beam(score=-i, state=[i]) for i in range(10)]
        final = run(initial, [], width=3)
        assert len(final) == 3
        assert final[0].state == [0]
