"""GrammarSeq2Seq behaviour tests."""

import pytest

from repro.core.metadata import QueryMetadata, extract_metadata
from repro.models.registry import create_model
from repro.models.seq2seq import GrammarSeq2Seq, ModelProfile, estimate_rating
from repro.models.sketch import extract_sketch
from repro.sqlkit.compare import exact_match
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql


class TestTraining:
    def test_translate_before_fit_raises(self, tiny_benchmark):
        model = create_model("lgesql")
        db = tiny_benchmark.dev.database("pets")
        with pytest.raises(RuntimeError):
            model.translate("how many pets", db)

    def test_fit_returns_self(self, tiny_benchmark):
        model = create_model("bridge")
        assert model.fit(tiny_benchmark.train) is model

    def test_metadata_flag(self, tiny_benchmark):
        model = create_model("bridge")
        model.fit(tiny_benchmark.train, with_metadata=True)
        assert model.metadata_trained


class TestDecoding:
    def test_beam_returns_candidates(self, fitted_lgesql, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate(
            "How many students are there?", db, beam_size=5
        )
        assert 1 <= len(candidates) <= 5
        # Scores are sorted best-first.
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_candidates_unique(self, fitted_lgesql, tiny_benchmark):
        db = tiny_benchmark.dev.database("cars")
        candidates = fitted_lgesql.translate(
            "Show the weight of cars with more than 100 horsepower",
            db,
            beam_size=5,
        )
        texts = [to_sql(c.query) for c in candidates]
        assert len(texts) == len(set(texts))

    def test_deterministic(self, fitted_lgesql, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        a = fitted_lgesql.translate("List all student last names", db)
        b = fitted_lgesql.translate("List all student last names", db)
        assert [to_sql(c.query) for c in a] == [to_sql(c.query) for c in b]

    def test_easy_question_translates_correctly(
        self, fitted_lgesql, tiny_benchmark
    ):
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate(
            "How many students are there?", db, beam_size=3
        )
        gold = parse_sql("SELECT count(*) FROM student")
        assert any(exact_match(c.query, gold) for c in candidates)

    def test_value_placeholders_for_lgesql(
        self, fitted_lgesql, tiny_benchmark
    ):
        """LGESQL does not predict values: literals become 'value'."""
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate(
            "Find the last names of students whose major is Biology",
            db,
            beam_size=3,
        )
        joined = " ".join(to_sql(c.query) for c in candidates)
        assert "'Biology'" not in joined

    def test_bridge_predicts_values(self, tiny_benchmark):
        model = create_model("bridge").fit(tiny_benchmark.train)
        db = tiny_benchmark.dev.database("pets")
        candidates = model.translate(
            "Find the last names of students whose major is Biology",
            db,
            beam_size=3,
        )
        joined = " ".join(to_sql(c.query) for c in candidates)
        assert "Biology" in joined


class TestMetadataConditioning:
    @pytest.fixture(scope="class")
    def meta_model(self, tiny_benchmark):
        model = create_model("lgesql")
        model.fit(tiny_benchmark.train, with_metadata=True)
        return model

    def test_tags_steer_structure(self, meta_model, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        question = "Find the last names of students"
        order_meta = QueryMetadata(
            tags=frozenset({"project", "order", "limit"}), rating=175
        )
        candidates = meta_model.translate(
            question, db, metadata=order_meta, beam_size=3
        )
        assert candidates
        sketches = [extract_sketch(c.query) for c in candidates]
        assert any(s.order != "none" for s in sketches)

    def test_conditioning_ignored_without_metadata_training(
        self, fitted_lgesql, tiny_benchmark
    ):
        db = tiny_benchmark.dev.database("pets")
        question = "Find the last names of students"
        plain = fitted_lgesql.translate(question, db, beam_size=3)
        order_meta = QueryMetadata(
            tags=frozenset({"project", "order", "limit"}), rating=175
        )
        conditioned = fitted_lgesql.translate(
            question, db, metadata=order_meta, beam_size=3
        )
        assert [to_sql(c.query) for c in plain] == [
            to_sql(c.query) for c in conditioned
        ]

    def test_incorrect_indicator_degrades(self, meta_model, tiny_benchmark):
        dev = tiny_benchmark.dev
        correct_hits = 0
        incorrect_hits = 0
        for example in dev.examples[:40]:
            db = dev.database(example.db_id)
            gold_meta = extract_metadata(example.sql)
            good = meta_model.translate(
                example.question, db, metadata=gold_meta, beam_size=1
            )
            bad = meta_model.translate(
                example.question,
                db,
                metadata=gold_meta.with_correctness("incorrect"),
                beam_size=1,
            )
            if good and exact_match(good[0].query, example.sql):
                correct_hits += 1
            if bad and exact_match(bad[0].query, example.sql):
                incorrect_hits += 1
        assert correct_hits > incorrect_hits


class TestRatingEstimate:
    def test_monotone_in_structure(self):
        plain = extract_sketch(parse_sql("SELECT a FROM t"))
        heavy = extract_sketch(
            parse_sql(
                "SELECT a FROM t JOIN u ON t.id = u.tid "
                "WHERE b = 1 GROUP BY a ORDER BY a LIMIT 1"
            )
        )
        assert estimate_rating(heavy) > estimate_rating(plain)

    def test_close_to_true_rating(self, tiny_benchmark):
        from repro.sqlkit.hardness import hardness_rating

        errors = []
        for example in tiny_benchmark.dev.examples[:60]:
            estimate = estimate_rating(extract_sketch(example.sql))
            errors.append(abs(estimate - hardness_rating(example.sql)))
        assert sum(errors) / len(errors) < 120
