"""Number-mention extraction tests."""

from repro.models.mentions import extract_mentions, phrase_positions, question_tokens


def mention(question: str, index: int = 0):
    return extract_mentions(question)[index]


class TestTokens:
    def test_decimal_numbers_kept_whole(self):
        assert "23.8" in question_tokens("mpg is less than 23.8")

    def test_trailing_punctuation_stripped(self):
        assert question_tokens("named Resolute.")[-1] == "resolute"


class TestOperators:
    def test_greater(self):
        assert mention("age is greater than 30").op == ">"

    def test_more_than(self):
        assert mention("with more than 5 pets").op == ">"

    def test_less(self):
        assert mention("salary is less than 100").op == "<"

    def test_at_least_bigram(self):
        assert mention("whose age is at least 21").op == ">="

    def test_no_more_bigram(self):
        assert mention("with no more than 7 records").op == "<="

    def test_no_less_bigram(self):
        assert mention("with no less than 7 records").op == ">="

    def test_default_equality(self):
        assert mention("in the year 1999").op == "="


class TestRoles:
    def test_count_threshold(self):
        m = mention("appearing more than 3 times")
        assert m.is_count_threshold

    def test_records_threshold(self):
        assert mention("with more than 2 records").is_count_threshold

    def test_limit(self):
        assert mention("show the top 4 players").is_limit

    def test_between_bounds(self):
        mentions = extract_mentions("age is between 18 and 30")
        assert mentions[0].is_between_bound
        assert mentions[1].is_between_bound

    def test_between_does_not_leak(self):
        mentions = extract_mentions(
            "age between 18 and 30 and salary above 50"
        )
        assert not mentions[2].is_between_bound

    def test_positions_increase(self):
        mentions = extract_mentions("a 1 b 2 c 3")
        positions = [m.position for m in mentions]
        assert positions == sorted(positions)

    def test_values_parsed(self):
        mentions = extract_mentions("between 1.5 and 3")
        assert mentions[0].value == 1.5
        assert mentions[1].value == 3


class TestPhrasePositions:
    def test_matches_words(self):
        tokens = question_tokens("find the pet age of cats")
        assert phrase_positions(tokens, "pet age") == [2, 3]

    def test_absent_phrase(self):
        tokens = question_tokens("nothing here")
        assert phrase_positions(tokens, "pet age") == []
