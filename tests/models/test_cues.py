"""Surface-cue extraction tests."""

import pytest

from repro.models.cues import (
    CueEvidence,
    cue_bonus,
    extract_cues,
    find_mentioned_values,
)
from repro.models.sketch import extract_sketch
from repro.sqlkit.parser import parse_sql


class TestValueGrounding:
    def test_finds_db_value(self, world_db):
        hits = find_mentioned_values("countries that speak Dutch", world_db)
        assert any(v == "Dutch" for __, __, v, __ in hits)

    def test_multiword_value(self, world_db):
        hits = find_mentioned_values(
            "countries in North America", world_db
        )
        assert any(v == "North America" for __, __, v, __ in hits)

    def test_absent_value(self, world_db):
        assert find_mentioned_values("quantum flux", world_db) == []


class TestCueExtraction:
    def test_eq_predicate_counted(self, world_db):
        cues = extract_cues("countries whose name is Aruba", world_db)
        assert cues.kind_counts["eq"] == 1

    def test_negation_detected(self, world_db):
        cues = extract_cues(
            "countries that do not have the name Aruba", world_db
        )
        assert cues.kind_counts["neq"] == 1

    def test_cmp_mentions_counted(self, world_db):
        cues = extract_cues(
            "countries with population above 5000 and percentage below 3",
            world_db,
        )
        assert cues.kind_counts["cmp"] == 2

    def test_except_cue(self, world_db):
        cues = extract_cues(
            "Show codes but not those whose language is English", world_db
        )
        assert cues.setop == "except"

    def test_nested_scalar_cue(self, world_db):
        cues = extract_cues(
            "countries with population above the average population", world_db
        )
        assert cues.nested == "scalar"

    def test_group_cue(self, world_db):
        cues = extract_cues(
            "count of countries for each continent", world_db
        )
        assert cues.group

    def test_having_cue(self, world_db):
        cues = extract_cues(
            "continents with more than 2 records", world_db
        )
        assert cues.having

    def test_superlative_requires_with_has(self, world_db):
        order = extract_cues(
            "the country with the highest population", world_db
        )
        agg = extract_cues("the highest population of countries", world_db)
        assert order.superlative == "high"
        assert agg.superlative == "none"
        assert agg.agg_counts["max"] == 1

    def test_count_question(self, world_db):
        assert extract_cues("How many countries are there", world_db).count_question

    def test_n_select_hint(self, world_db):
        cues = extract_cues(
            "Show the name and population of countries", world_db
        )
        assert cues.n_select_hint == 2

    def test_table_plural_hint(self, world_db):
        cues = extract_cues(
            "names of countrys with citys", world_db
        )
        assert cues.table_hints >= 1


class TestCueBonus:
    def test_matching_sketch_scores_higher(self, world_db):
        question = "countries whose name is Aruba"
        cues = extract_cues(question, world_db)
        good = extract_sketch(
            parse_sql("SELECT code FROM country WHERE name = 'Aruba'")
        )
        bad = extract_sketch(
            parse_sql("SELECT code, name FROM country GROUP BY code")
        )
        assert cue_bonus(good, cues) > cue_bonus(bad, cues)

    def test_setop_mismatch_penalised(self, world_db):
        cues = extract_cues(
            "codes excluding those whose language is English", world_db
        )
        setop = extract_sketch(
            parse_sql(
                "SELECT code FROM country EXCEPT "
                "SELECT code FROM country WHERE name = 'x'"
            )
        )
        plain = extract_sketch(parse_sql("SELECT code FROM country"))
        assert cue_bonus(setop, cues) > cue_bonus(plain, cues)
