"""Cross-module property-based tests on generated queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import TAG_VOCABULARY, extract_metadata
from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.data.nl import QuestionRenderer
from repro.eval.metrics import execution_match
from repro.models.seq2seq import estimate_rating
from repro.models.sketch import extract_sketch
from repro.sqlkit.hardness import hardness_rating
from repro.sqlkit.sql2nl import describe_query, unit_phrases
from repro.sqlkit.units import decompose

DOMAINS = sorted(SPIDER_DOMAINS)


def sample_query(seed: int):
    domain = DOMAINS[seed % len(DOMAINS)]
    db = build_domain(SPIDER_DOMAINS[domain], seed=7)
    sampler = QuerySampler(db, np.random.default_rng(seed))
    return db, sampler.sample()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_metadata_tags_within_vocabulary(seed):
    __, query = sample_query(seed)
    metadata = extract_metadata(query)
    assert metadata.tags <= set(TAG_VOCABULARY)
    assert "project" in metadata.tags
    assert metadata.rating >= 100


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_every_query_describable(seed):
    db, query = sample_query(seed)
    description = describe_query(query, db.schema)
    assert description
    phrases = unit_phrases(query, db.schema)
    assert len(phrases) == len(decompose(query))
    assert all(p for p in phrases)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_execution_match_reflexive(seed):
    db, query = sample_query(seed)
    assert execution_match(query, query, db)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_sketch_rating_estimate_tracks_true_rating(seed):
    __, query = sample_query(seed)
    estimate = estimate_rating(extract_sketch(query))
    true = hardness_rating(query)
    assert abs(estimate - true) <= 300


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_question_rendering_deterministic(seed):
    db, query = sample_query(seed)
    a = QuestionRenderer(db.schema, np.random.default_rng(seed)).render(query)
    b = QuestionRenderer(db.schema, np.random.default_rng(seed)).render(query)
    assert a == b
    assert len(a) > 5


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_operator_tags_match_metadata_extraction(seed):
    """Sketch-derived tags and metadata tags are the same thing."""
    __, query = sample_query(seed)
    assert extract_sketch(query).operator_tags() == extract_metadata(query).tags
