"""Continuous micro-batching tests: scheduler, correctness, isolation.

The invariant under test everywhere: batching changes *when* requests
run, never *what* happens to them.  Batched ranked SQL is bit-identical
to sequential, a tight deadline bypasses the tick, a mid-batch hot swap
never tears a group across epochs, and an armed ``serve.handle``
failpoint fails exactly the members it would have failed singly.
"""

from __future__ import annotations

import queue
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import MetaSQL, RankedResult, RankedTranslation
from repro.core.resilience import (
    FAULTS,
    Deadline,
    FaultRecord,
    InjectedFault,
    TranslationReport,
    current_deadline,
)
from repro.devtools.lockdep import lockdep_scope
from repro.obs.journal import read_journal
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServiceConfig, TranslationService
from repro.serve.batcher import (
    BATCH_SIZE_BUCKETS,
    Batch,
    MicroBatcher,
    PreformedGroup,
)
from repro.sqlkit.errors import ConfigError, Overloaded
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql
from repro.tenancy import TenantQuota
from repro.tenancy.router import Router

pytestmark = [pytest.mark.robustness, pytest.mark.serve]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


def _ranked(sql: str = "SELECT name FROM country") -> RankedTranslation:
    return RankedTranslation(
        query=parse_sql(sql), stage1_score=1.0, stage2_score=1.0, metadata=None
    )


def _ok(question: str) -> RankedResult:
    return RankedResult([_ranked()], TranslationReport(question=question))


class BatchStub:
    """Duck-typed shard that records batched vs single call shapes."""

    breakers = None
    _trained = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batch_sizes: list[int] = []
        self.single_calls = 0
        self.seen_deadlines: list[Deadline | None] = []

    def translate_ranked_report(self, question, db, compositions=None):
        with self._lock:
            self.single_calls += 1
            self.seen_deadlines.append(current_deadline())
        return _ok(question)

    def translate_many(self, requests, deadline=None, deadlines=None):
        items = list(requests)
        with self._lock:
            self.batch_sizes.append(len(items))
        return [_ok(question) for question, _db in items]


class SingleOnlyStub:
    """A shard without ``translate_many`` (member-isolation fallback)."""

    breakers = None
    _trained = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls = 0

    def translate_ranked_report(self, question, db, compositions=None):
        with self._lock:
            self.calls += 1
        return _ok(question)


class GatedBatchStub(BatchStub):
    """Batched stub that parks inside ``translate_many`` on a gate."""

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.gate = threading.Event()

    def translate_many(self, requests, deadline=None, deadlines=None):
        self.entered.set()
        assert self.gate.wait(10), "test gate never opened"
        return super().translate_many(requests, deadline, deadlines)


class TransientOnceStub(BatchStub):
    """Batched path returns transient-fault empties; singles succeed.

    Exercises the batched-first-attempt → single-retry settling path.
    """

    def translate_many(self, requests, deadline=None, deadlines=None):
        items = list(requests)
        with self._lock:
            self.batch_sizes.append(len(items))
        results = []
        for question, _db in items:
            report = TranslationReport(question=question)
            report.record(
                FaultRecord(
                    stage="generate",
                    error_type="TransientError",
                    error="injected by TransientOnceStub",
                    fallback="empty",
                    transient=True,
                )
            )
            results.append(RankedResult([], report))
        return results


def _service(stub, **knobs) -> TranslationService:
    defaults = dict(
        workers=2, queue_limit=256, batching=True, batch_wait_ms=10,
        max_batch_size=8, jitter_seed=7,
    )
    defaults.update(knobs)
    return TranslationService(
        stub, ServiceConfig(**defaults),
        registry=MetricsRegistry(), sleep=lambda _s: None,
    )


# ----------------------------------------------------------------------
# Config + scheduler unit behaviour.


class TestConfigAndScheduler:
    def test_batching_knobs_validated(self):
        with pytest.raises(ConfigError, match="batch wait"):
            ServiceConfig(batch_wait_ms=-1)
        with pytest.raises(ConfigError, match="max batch size"):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ConfigError, match="batch wait"):
            MicroBatcher(
                queue.Queue(), lambda b: None, wait_s=-0.1, max_size=4,
                group_key=lambda j: "t", sentinel=object(),
                registry=MetricsRegistry(),
            )

    def test_scheduler_groups_by_key_and_chunks_to_max_size(self):
        """One flush splits per-tenant, order-preserving, max_size chunks."""
        source: queue.Queue = queue.Queue()
        batches: list[Batch] = []
        done = threading.Event()
        stop = object()

        class J:
            def __init__(self, tenant, name):
                self.tenant_id = tenant
                self.name = name
                self.deadline = None
                self.future = None

        jobs = [J("a", f"a{i}") for i in range(5)] + [J("b", "b0")]
        batcher = MicroBatcher(
            source, batches.append, wait_s=10.0, max_size=2,
            group_key=lambda j: j.tenant_id, sentinel=stop,
            on_shutdown=done.set, registry=MetricsRegistry(),
        )
        batcher.start()
        source.put(PreformedGroup(jobs))
        source.put(stop)
        assert done.wait(10)
        batcher.join(10)
        assert [(b.tenant_id, len(b.jobs)) for b in batches] == [
            ("a", 2), ("a", 2), ("a", 1), ("b", 1),
        ]
        assert all(b.reason == "preformed" for b in batches)
        # Order inside a tenant is submission order.
        assert [j.name for j in batches[0].jobs] == ["a0", "a1"]
        stats = batcher.stats()
        assert stats["requests"] == 6
        assert stats["flush_reasons"] == {"preformed": 4}

    def test_size_threshold_flushes_without_waiting_out_the_tick(self):
        stub = BatchStub()
        with _service(stub, workers=1, batch_wait_ms=60_000,
                      max_batch_size=4) as service:
            futures = [service.submit(f"q{i}", None) for i in range(4)]
            for future in futures:
                assert future.result(timeout=10).translations
        assert 4 in stub.batch_sizes
        assert "size" in service._batcher.stats()["flush_reasons"]

    def test_shutdown_flushes_the_forming_batch(self):
        """Requests parked in a forming batch drain on shutdown."""
        stub = BatchStub()
        service = _service(stub, workers=1, batch_wait_ms=60_000,
                           max_batch_size=64)
        future = service.submit("parked", None)
        service.shutdown(wait=True)
        assert future.result(timeout=10).translations
        assert service._batcher.stats()["flush_reasons"] == {"shutdown": 1}


# ----------------------------------------------------------------------
# Deadline policy.


class TestDeadlinePolicy:
    def test_tight_deadline_bypasses_the_tick(self):
        """A member that cannot survive the tick flushes immediately."""
        stub = BatchStub()
        started = time.monotonic()
        with _service(stub, workers=1, batch_wait_ms=30_000) as service:
            result = service.translate(
                "urgent", None, deadline=0.05, timeout=10
            )
        elapsed = time.monotonic() - started
        assert result.translations
        assert elapsed < 5.0, f"tick was not bypassed ({elapsed:.1f}s)"
        assert "deadline" in service._batcher.stats()["flush_reasons"]

    def test_translate_many_threads_per_item_deadlines(self):
        stub = BatchStub()
        tight = Deadline(0.05)
        with _service(stub, workers=1, batch_wait_ms=30_000,
                      max_batch_size=2) as service:
            futures = [
                service.submit("relaxed", None),
                service.submit("urgent", None, deadline=tight),
            ]
            for future in futures:
                assert future.result(timeout=10).translations
        # Both members rode one batch; the stub received the batched
        # call (deadlines threaded via translate_many, not ambient).
        assert stub.batch_sizes == [2]

    def test_translate_many_rejects_bad_deadline_combinations(self):
        from repro.models.registry import create_model

        pipeline = MetaSQL(create_model("lgesql"))
        with pytest.raises(ValueError, match="not both"):
            pipeline.translate_many(
                [("q", None)], deadline=Deadline(1), deadlines=[None]
            )
        with pytest.raises(ValueError, match="one-to-one"):
            pipeline.translate_many([("q", None)], deadlines=[None, None])


# ----------------------------------------------------------------------
# Batched == sequential (the core correctness claim).


class TestBitIdentical:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        workload=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.sampled_from(["alpha", "beta"]),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_batched_ranked_sql_matches_sequential(
        self, workload, trained_pipeline, tiny_benchmark
    ):
        """Mixed-tenant batched serving returns bit-identical ranked SQL.

        Reference answers come from direct sequential
        ``translate_ranked_report`` calls on the same pipeline; the
        batched service must reproduce every member's full ranked list
        exactly, whatever grouping the scheduler happens to pick.
        """
        examples = tiny_benchmark.dev.examples[:6]
        reference: dict[int, list[str]] = {}
        for index in {i for i, _t in workload}:
            example = examples[index]
            db = tiny_benchmark.dev.database(example.db_id)
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
            reference[index] = [
                to_sql(t.query) for t in result.translations
            ]
        router = Router()
        router.register("alpha", trained_pipeline)
        router.register("beta", trained_pipeline)
        config = ServiceConfig(
            workers=2, queue_limit=256, batching=True,
            batch_wait_ms=20, max_batch_size=4, max_retries=0,
        )
        with TranslationService(
            router, config, registry=MetricsRegistry()
        ) as service:
            futures = [
                (
                    index,
                    service.submit(
                        examples[index].question,
                        tiny_benchmark.dev.database(examples[index].db_id),
                        tenant=tenant,
                    ),
                )
                for index, tenant in workload
            ]
            for index, future in futures:
                ranked = future.result(timeout=60)
                assert [
                    to_sql(t.query) for t in ranked.translations
                ] == reference[index]

    def test_batching_off_is_the_pre_batching_service(self):
        """batching=False never constructs a scheduler or batch queue."""
        stub = BatchStub()
        with TranslationService(
            stub, ServiceConfig(workers=2, batching=False),
            registry=MetricsRegistry(),
        ) as service:
            assert service._batcher is None
            assert service._batches is None
            for _ in range(4):
                assert service.translate("q", None, timeout=10).translations
        assert stub.batch_sizes == []
        assert stub.single_calls == 4
        rendered = service.metrics()
        assert "metasql_serve_batch" not in rendered


# ----------------------------------------------------------------------
# Tenancy: pre-formed groups, quotas, hot swap.


class TestTenancyInteraction:
    def test_submit_many_is_one_preformed_group(self):
        stub = BatchStub()
        with _service(stub, workers=1, batch_wait_ms=60_000,
                      max_batch_size=16) as service:
            futures = service.submit_many([(f"q{i}", None) for i in range(5)])
            for future in futures:
                assert future.result(timeout=10).translations
        assert stub.batch_sizes == [5]
        assert service._batcher.stats()["flush_reasons"] == {"preformed": 1}

    def test_submit_many_rejection_is_all_or_nothing(self):
        stub = BatchStub()
        with _service(stub, queue_limit=4) as service:
            with pytest.raises(Overloaded):
                service.submit_many([(f"q{i}", None) for i in range(5)])
            assert service.health().rejected == 1
            # Quota fully released: the same group admits once it fits.
            futures = service.submit_many(
                [(f"q{i}", None) for i in range(4)]
            )
            for future in futures:
                assert future.result(timeout=10).translations

    def test_submit_many_quota_rejection_releases_every_member(self):
        stub = BatchStub()
        router = Router()
        tenant = router.register(
            "alpha", stub, quota=TenantQuota(max_share=3)
        )
        config = ServiceConfig(
            workers=1, queue_limit=256, batching=True,
            batch_wait_ms=60_000, max_batch_size=16,
        )
        with TranslationService(
            router, config, registry=MetricsRegistry()
        ) as service:
            with pytest.raises(Exception, match="alpha"):
                service.submit_many(
                    [(f"q{i}", None) for i in range(4)], tenant="alpha"
                )
            assert tenant.pending == 0
            futures = service.submit_many(
                [(f"q{i}", None) for i in range(3)], tenant="alpha"
            )
            for future in futures:
                assert future.result(timeout=10).translations

    def test_mid_batch_hot_swap_never_tears_the_group(self, tmp_path):
        """All members of a batch run on one epoch across a live swap."""
        old = GatedBatchStub()
        new = BatchStub()
        journal_path = tmp_path / "swap.jsonl"
        config = ServiceConfig(
            workers=1, queue_limit=256, batching=True,
            batch_wait_ms=60_000, max_batch_size=16,
            journal_path=journal_path,
        )
        service = TranslationService(
            old, config, registry=MetricsRegistry()
        )
        futures = service.submit_many([(f"q{i}", None) for i in range(3)])
        assert old.entered.wait(10), "batch never reached the old shard"
        # The swap lands while the batch is mid-flight on the old lease.
        swapped_epoch = service.swap(new)
        old.gate.set()
        for future in futures:
            assert future.result(timeout=10).translations
        # A tight deadline bypasses the (deliberately huge) tick.
        late = service.translate(
            "after-swap", None, deadline=0.05, timeout=10
        )
        assert late.translations
        service.shutdown()
        records = read_journal(journal_path)
        batched = [
            r for r in records
            if r["event"] == "translate" and r["question"].startswith("q")
        ]
        epochs = {r["shard_epoch"] for r in batched}
        assert len(batched) == 3
        assert len(epochs) == 1, f"swap tore the batch: {epochs}"
        assert epochs.pop() < swapped_epoch
        after = [
            r for r in records
            if r["event"] == "translate" and r["question"] == "after-swap"
        ]
        assert after[0]["shard_epoch"] == swapped_epoch
        assert old.batch_sizes == [3]
        assert new.batch_sizes == [] and new.single_calls == 1


# ----------------------------------------------------------------------
# Fault isolation inside a batch.


class TestFaultIsolation:
    def test_armed_failpoint_fails_only_its_members(self):
        """One batch carries failures and successes side by side."""
        stub = BatchStub()
        with _service(stub, workers=1, batch_wait_ms=60_000,
                      max_batch_size=16, max_retries=0) as service:
            FAULTS.arm("serve.handle", times=3)
            futures = service.submit_many(
                [(f"q{i}", None) for i in range(10)]
            )
            outcomes = {"ok": 0, "fault": 0}
            for future in futures:
                try:
                    assert future.result(timeout=10).translations
                    outcomes["ok"] += 1
                except InjectedFault:
                    outcomes["fault"] += 1
        assert outcomes == {"ok": 7, "fault": 3}
        health = service.health()
        assert health.completed == 7
        assert health.failed == 3
        assert health.in_flight == 0
        # The survivors still rode one batched forward together.
        assert stub.batch_sizes == [7]

    def test_member_isolation_without_translate_many(self):
        """A shard without the batched API still serves whole batches."""
        stub = SingleOnlyStub()
        with _service(stub, workers=1, batch_wait_ms=60_000,
                      max_batch_size=16) as service:
            futures = service.submit_many([(f"q{i}", None) for i in range(6)])
            for future in futures:
                assert future.result(timeout=10).translations
        assert stub.calls == 6
        assert service._batcher.stats()["requests"] == 6

    def test_batched_transient_faults_retry_singly(self):
        """Batched empties with transient faults settle via the retry path."""
        stub = TransientOnceStub()
        with _service(stub, workers=1, batch_wait_ms=60_000,
                      max_batch_size=4, max_retries=1) as service:
            futures = service.submit_many([(f"q{i}", None) for i in range(3)])
            for future in futures:
                assert future.result(timeout=10).translations
        assert stub.batch_sizes == [3]  # one batched first attempt
        assert stub.single_calls == 3  # one single retry per member
        assert service.health().retried == 3


# ----------------------------------------------------------------------
# Observability of the batching layer.


class TestBatchObservability:
    def test_metrics_journal_and_annotations(self, tmp_path):
        journal_path = tmp_path / "batching.jsonl"
        stub = BatchStub()
        with _service(stub, workers=1, batch_wait_ms=60_000,
                      max_batch_size=8,
                      journal_path=journal_path) as service:
            futures = service.submit_many([(f"q{i}", None) for i in range(5)])
            for future in futures:
                assert future.result(timeout=10).translations
            rendered = service.metrics()
        service.shutdown()
        assert 'metasql_serve_batch_size_bucket{le="8"} 1' in rendered
        assert "metasql_serve_batch_wait_seconds_count 1" in rendered
        assert (
            'metasql_serve_batch_flush_total{reason="preformed"} 1'
            in rendered
        )
        assert (
            'metasql_serve_batched_requests_total{tenant="default"} 5'
            in rendered
        )
        records = read_journal(journal_path)
        flushes = [r for r in records if r["event"] == "batch_flush"]
        assert len(flushes) == 1
        flush = flushes[0]
        assert flush["tenant"] == "default"
        assert flush["size"] == 5
        assert flush["reason"] == "preformed"
        assert flush["wait_s"] >= 0.0
        assert isinstance(flush["shard_epoch"], int)
        translates = [r for r in records if r["event"] == "translate"]
        assert {r["batch_size"] for r in translates} == {5}

    def test_batch_size_buckets_cover_the_knob_range(self):
        assert BATCH_SIZE_BUCKETS[0] == 1.0
        assert BATCH_SIZE_BUCKETS[-1] >= 256


# ----------------------------------------------------------------------
# Lockdep witness: the scheduler lock under instrumented chaos.


@pytest.mark.concurrency
class TestSchedulerLockWitness:
    def test_batching_hammer_reports_zero_inversions(self):
        """Scheduler + workers + swap under full lockdep instrumentation."""
        with lockdep_scope() as dep:
            stub = BatchStub()
            config = ServiceConfig(
                workers=4, queue_limit=512, batching=True,
                batch_wait_ms=2, max_batch_size=8, max_retries=0,
            )
            futures = []
            futures_lock = threading.Lock()
            with TranslationService(
                stub, config, registry=MetricsRegistry()
            ) as service:

                def hammer(prefix: str) -> None:
                    for index in range(40):
                        try:
                            future = service.submit(
                                f"{prefix}{index}", None
                            )
                        except Overloaded:
                            continue
                        with futures_lock:
                            futures.append(future)

                pool = [
                    threading.Thread(target=hammer, args=(f"t{i}-",))
                    for i in range(4)
                ]
                for thread in pool:
                    thread.start()
                service.swap(BatchStub())
                for thread in pool:
                    thread.join(timeout=30)
                for future in futures:
                    assert future.result(timeout=30).translations
            dep.assert_clean()
            assert dep.acquisitions > 0
            assert {
                "MicroBatcher._lock",
                "TranslationService._lock",
                "ShardGuard._cond",
            } <= dep.seen
