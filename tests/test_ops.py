"""Operational-intelligence layer tests (marker: ops).

Covers the PR-8 tentpole end to end: `SloSpec`/`SloEngine` burn-rate
alerting on fake clocks (including the hypothesis replay-purity
property), the tail-sampling `FlightRecorder` and its debug bundles,
the `OpsServer` HTTP routes, `tools/opsctl.py`, a `MetricsRegistry`
label-churn hammer, and the acceptance test: a real `TranslationService`
with the endpoint enabled under mixed faulted/deadline-violating
traffic.
"""

from __future__ import annotations

import importlib.util
import io
import json
import pathlib
import sys
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resilience import FAULTS, Deadline
from repro.eval import aggregate_journal
from repro.obs import (
    FlightRecorder,
    Journal,
    MetricsRegistry,
    OpsServer,
    SloEngine,
    SloError,
    SloSpec,
    default_slos,
    load_bundle,
    read_journal,
)
from repro.schema.database import Database
from repro.schema.schema import Column, Schema, Table
from repro.serve import ServiceConfig, TranslationService
from repro.sqlkit.errors import (
    CheckpointCorrupt,
    ConfigError,
    TenantSwapError,
)

pytestmark = pytest.mark.ops

REPO = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "opsctl", REPO / "tools" / "opsctl.py"
)
opsctl = importlib.util.module_from_spec(_spec)
sys.modules["opsctl"] = opsctl
_spec.loader.exec_module(opsctl)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


class FakeClock:
    """Manually advanced clock for deterministic SLO windows."""

    def __init__(self, start: float = 1000.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def _tiny_db() -> Database:
    return Database(
        Schema(db_id="d", tables=(Table("t", (Column("c"),)),))
    )


def _record(
    good: bool = True,
    tenant: str = "default",
    latency: float = 0.01,
    **extra,
) -> dict:
    record = {
        "event": "translate",
        "tenant": tenant,
        "latency_s": latency,
        "degraded": not good,
        "deadline_expired": False,
        "faults": [],
        "verify_demoted": 0,
        "repair_attempts": 0,
    }
    record.update(extra)
    return record


def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


# ----------------------------------------------------------------------
# SloSpec validation and classification.


class TestSloSpec:
    def test_defaults_are_the_workbook_policy(self):
        spec = SloSpec("availability")
        assert spec.fast_windows == (300.0, 3600.0)
        assert spec.slow_windows == (3600.0, 21600.0)
        assert spec.fast_burn == pytest.approx(14.4)
        assert spec.slow_burn == pytest.approx(6.0)
        assert spec.error_budget == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"name": ""}, "non-empty name"),
            ({"name": "x", "indicator": "nope"}, "unknown SLO indicator"),
            ({"name": "x", "objective": 1.0}, "objective"),
            ({"name": "x", "objective": 0.0}, "objective"),
            ({"name": "x", "indicator": "latency"}, "threshold"),
            ({"name": "x", "fast_windows": (60.0, 30.0)}, "fast_windows"),
            ({"name": "x", "slow_windows": (60.0,)}, "slow_windows"),
            ({"name": "x", "fast_burn": 0.0}, "burn-rate"),
            ({"name": "x", "tenant": "a", "per_tenant": True}, "per_tenant"),
        ],
    )
    def test_invalid_specs_raise_typed_errors(self, kwargs, match):
        with pytest.raises(SloError, match=match):
            SloSpec(**kwargs)

    def test_slo_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            SloSpec("")

    def test_latency_classification(self):
        spec = SloSpec("lat", indicator="latency", threshold=0.5)
        assert spec.classify({"latency_s": 0.4}) is True
        assert spec.classify({"latency_s": 0.5}) is True
        assert spec.classify({"latency_s": 0.6}) is False
        assert spec.classify({}) is None  # not applicable

    def test_indicator_classifications(self):
        assert SloSpec("a").classify({"degraded": True}) is False
        assert SloSpec("a").classify({"degraded": False}) is True
        spec = SloSpec("d", indicator="deadline")
        assert spec.classify({"deadline_expired": True}) is False
        spec = SloSpec("f", indicator="fault")
        assert spec.classify({"faults": [{"stage": "s"}]}) is False
        assert spec.classify({"faults": []}) is True
        spec = SloSpec("v", indicator="verify_demotion")
        assert spec.classify({"verify_demoted": 2}) is False
        assert spec.classify({"verify_demoted": 0}) is True
        spec = SloSpec("r", indicator="repair")
        assert spec.classify({"repair_attempts": 0}) is True
        assert (
            spec.classify({"repair_attempts": 1, "repair_succeeded": False})
            is False
        )
        assert (
            spec.classify({"repair_attempts": 1, "repair_succeeded": True})
            is True
        )

    def test_default_slos_are_valid_and_json_ready(self):
        specs = default_slos()
        assert [spec.name for spec in specs] == [
            "latency",
            "availability",
            "verify_demotion",
        ]
        json.dumps([spec.as_dict() for spec in specs])


# ----------------------------------------------------------------------
# Burn-rate alerting on a fake clock.


def _fast_spec(name: str = "avail", **kwargs) -> SloSpec:
    """A spec with short synthetic windows for fast deterministic tests."""
    defaults = dict(
        indicator="degraded",
        objective=0.9,
        fast_windows=(10.0, 60.0),
        fast_burn=5.0,
        slow_windows=(60.0, 360.0),
        slow_burn=3.0,
    )
    defaults.update(kwargs)
    return SloSpec(name, **defaults)


class TestSloEngine:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SloError, match="duplicate"):
            SloEngine(
                (SloSpec("a"), SloSpec("a")), registry=MetricsRegistry()
            )

    def test_page_fires_when_both_fast_windows_burn(self):
        clock = FakeClock()
        engine = SloEngine(
            (_fast_spec(),), clock=clock, registry=MetricsRegistry()
        )
        for _ in range(8):
            engine.observe(_record(good=True))
            clock.advance(1.0)
        assert not engine.alerting()
        fired = []
        for _ in range(8):
            fired += engine.observe(_record(good=False))
            clock.advance(1.0)
        assert engine.alerting()
        page = [a for a in fired if a.severity == "page"]
        assert len(page) == 1 and page[0].state == "firing"
        assert page[0].burn_short >= 5.0 and page[0].burn_long >= 5.0

    def test_alert_clears_after_recovery(self):
        clock = FakeClock()
        engine = SloEngine(
            (_fast_spec(),), clock=clock, registry=MetricsRegistry()
        )
        for _ in range(10):
            engine.observe(_record(good=False))
            clock.advance(0.5)
        assert engine.alerting()
        # All bad events age out of even the slow_long window.
        clock.advance(1000.0)
        statuses = engine.evaluate()
        assert not engine.alerting()
        assert all(not status.firing for status in statuses)
        states = [(a.severity, a.state) for a in engine.transitions]
        assert ("page", "firing") in states
        assert ("page", "resolved") in states

    def test_short_spike_does_not_page_through_the_long_window(self):
        # A brief bad burst inside a mostly-good stream never trips the
        # paired thresholds — the whole point of multi-window alerting.
        clock = FakeClock()
        engine = SloEngine(
            (_fast_spec(),), clock=clock, registry=MetricsRegistry()
        )
        for _ in range(50):
            engine.observe(_record(good=True))
            clock.advance(1.0)
        for _ in range(3):
            engine.observe(_record(good=False))
            clock.advance(0.1)
        assert not engine.alerting()

    def test_tenant_pinned_spec_ignores_other_tenants(self):
        engine = SloEngine(
            (_fast_spec(tenant="acme"),),
            clock=FakeClock(),
            registry=MetricsRegistry(),
        )
        for _ in range(10):
            engine.observe(_record(good=False, tenant="globex"))
        assert not engine.alerting()
        for _ in range(10):
            engine.observe(_record(good=False, tenant="acme"))
        assert engine.alerting()

    def test_per_tenant_spec_tracks_each_tenant_separately(self):
        engine = SloEngine(
            (_fast_spec(per_tenant=True),),
            clock=FakeClock(),
            registry=MetricsRegistry(),
        )
        for _ in range(10):
            engine.observe(_record(good=False, tenant="acme"))
            engine.observe(_record(good=True, tenant="globex"))
        statuses = {s.tenant: s for s in engine.evaluate()}
        assert statuses["acme"].firing
        assert not statuses["globex"].firing
        assert statuses["globex"].compliance == pytest.approx(1.0)

    def test_not_applicable_records_are_skipped(self):
        engine = SloEngine(
            (
                SloSpec(
                    "lat",
                    indicator="latency",
                    threshold=0.1,
                    objective=0.9,
                ),
            ),
            clock=FakeClock(),
            registry=MetricsRegistry(),
        )
        engine.observe({"event": "translate"})  # no latency: skipped
        status = engine.evaluate()[0]
        assert status.total == 0
        assert status.compliance == pytest.approx(1.0)

    def test_window_eviction_bounds_memory(self):
        engine = SloEngine(
            (_fast_spec(),),
            clock=FakeClock(),
            registry=MetricsRegistry(),
            max_events_per_window=16,
        )
        for _ in range(100):
            engine.observe(_record(good=True))
        state = engine._states[("avail", "")]
        assert all(
            len(window.events) <= 16
            for window in state.windows.values()
        )

    def test_transitions_land_in_journal_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        journal = Journal(tmp_path / "slo.jsonl", fsync=False)
        engine = SloEngine(
            (_fast_spec(),),
            clock=FakeClock(),
            journal=journal,
            registry=registry,
        )
        for _ in range(10):
            engine.observe(_record(good=False))
        journal.close()
        events = read_journal(journal.path)
        fired = [e for e in events if e["event"] == "slo_alert"]
        assert fired and {e["state"] for e in fired} == {"firing"}
        assert registry.get("metasql_slo_events_total").labels(
            slo="avail", tenant="", outcome="bad"
        ).value == 10
        assert registry.get("metasql_slo_alert_active").labels(
            slo="avail", tenant="", severity="page"
        ).value == 1.0
        # journal_analysis folds the alert events.
        summary = aggregate_journal(journal.path)
        assert summary.slo_alerts["avail"]["firing"] >= 1
        assert "slo alerts:" in summary.render()

    def test_observation_with_pinned_ts_is_deterministic(self):
        engine = SloEngine(
            (_fast_spec(),),
            clock=FakeClock(),
            registry=MetricsRegistry(),
        )
        alerts = []
        for i in range(10):
            alerts += engine.observe(_record(good=False), ts=100.0 + i)
        assert alerts  # pinned timestamps drove the windows, not the clock


# ----------------------------------------------------------------------
# Replay purity (hypothesis): alerts are a pure function of the stream.


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=30.0),  # inter-arrival dt
            st.booleans(),  # good / bad
        ),
        min_size=1,
        max_size=80,
    )
)
def test_burn_rate_alerts_are_a_pure_function_of_observations(stream):
    def run() -> list[dict]:
        engine = SloEngine(
            (_fast_spec(), _fast_spec(name="strict", objective=0.95)),
            clock=FakeClock(),
            registry=MetricsRegistry(),
        )
        ts = 0.0
        for dt, good in stream:
            ts += dt
            engine.observe(_record(good=good), ts=ts)
        engine.evaluate(now=ts)
        return [alert.as_dict() for alert in engine.transitions]

    assert run() == run()  # replay => identical alert transitions


# ----------------------------------------------------------------------
# Flight recorder.


class TestFlightRecorder:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0, registry=MetricsRegistry())
        with pytest.raises(ValueError, match="slow_quantile"):
            FlightRecorder(slow_quantile=1.5, registry=MetricsRegistry())

    def test_reason_precedence(self):
        recorder = FlightRecorder(registry=MetricsRegistry())
        breaker = _record(
            faults=[{"stage": "s", "error_type": "BreakerOpen"}],
            degraded=True,
        )
        assert recorder.consider(breaker) == "breaker_open"
        fault = _record(faults=[{"stage": "s", "error_type": "E"}])
        assert recorder.consider(fault) == "fault"
        assert (
            recorder.consider(_record(deadline_expired=True)) == "deadline"
        )
        assert recorder.consider(_record(good=False)) == "degraded"
        assert (
            recorder.consider(_record(verify_demoted=2))
            == "verify_demotion"
        )
        assert recorder.consider(_record(repair_attempts=1)) == "repair"
        assert (
            recorder.consider(_record(), slo_alerting=True) == "slo_alert"
        )

    def test_healthy_requests_are_dropped(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry=registry)
        # Strictly decreasing latencies: each request is the fastest
        # seen, so it never crosses the rolling slow threshold.
        for index in range(30):
            record = _record(latency=0.03 - 0.0005 * index)
            assert recorder.consider(record) is None
        assert len(recorder) == 0
        assert (
            registry.get("metasql_recorder_considered_total").value == 30
        )

    def test_slowest_decile_is_captured_after_warmup(self):
        recorder = FlightRecorder(
            min_latency_samples=20, registry=MetricsRegistry()
        )
        # Below the minimum sample count, even an outlier is dropped.
        assert recorder.consider(_record(latency=9.0)) is None
        for index in range(30):
            latency = 0.01 * (30 - index)  # 0.30 .. 0.01, ever faster
            assert recorder.consider(_record(latency=latency)) is None
        assert recorder.consider(_record(latency=5.0)) == "slow"
        # The threshold is a rolling p90: ordinary traffic right after
        # the outlier stays uncaptured.
        assert recorder.consider(_record(latency=0.05)) is None

    def test_capacity_bound_evicts_oldest(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=3, registry=registry)
        for index in range(5):
            recorder.consider(_record(good=False, question=f"q{index}"))
        assert len(recorder) == 3
        questions = [
            entry["record"]["question"] for entry in recorder.entries()
        ]
        assert questions == ["q2", "q3", "q4"]  # oldest evicted first
        assert recorder.stats()["evicted"] == 2
        assert registry.get("metasql_recorder_evicted_total").value == 2
        assert registry.get("metasql_recorder_entries").value == 3

    def test_entries_filter_by_tenant_and_limit(self):
        recorder = FlightRecorder(registry=MetricsRegistry())
        for index in range(4):
            recorder.consider(
                _record(
                    good=False,
                    tenant="acme" if index % 2 else "globex",
                    question=f"q{index}",
                )
            )
        acme = recorder.entries(tenant="acme")
        assert [e["record"]["question"] for e in acme] == ["q1", "q3"]
        assert [
            e["record"]["question"] for e in recorder.entries(limit=1)
        ] == ["q3"]

    def test_force_capture_keeps_out_of_band_events(self):
        recorder = FlightRecorder(registry=MetricsRegistry())
        recorder.capture(
            {"event": "tenant_swap", "outcome": "rollback"},
            reason="swap_rollback",
        )
        assert recorder.entries()[0]["reason"] == "swap_rollback"

    def test_report_payload_rides_along(self):
        recorder = FlightRecorder(registry=MetricsRegistry())

        class _Report:
            def as_dict(self):
                return {"trace": {"name": "translate"}}

        recorder.consider(_record(good=False), report=_Report())
        entry = recorder.entries()[0]
        assert entry["report"]["trace"]["name"] == "translate"

    def test_dump_bundle_round_trips_and_is_atomic(self, tmp_path):
        recorder = FlightRecorder(
            clock=lambda: 42.0, registry=MetricsRegistry()
        )
        recorder.consider(_record(good=False))
        path = tmp_path / "deep" / "bundle.json"
        out = recorder.dump_bundle(
            path, health={"ready": True}, slo=[{"slo": "a"}]
        )
        assert out == path
        assert not path.with_suffix(".json.tmp").exists()
        bundle = load_bundle(path)
        assert bundle["version"] == 1
        assert bundle["generated_at"] == 42.0
        assert bundle["health"] == {"ready": True}
        assert bundle["slo"] == [{"slo": "a"}]
        assert len(bundle["entries"]) == 1
        assert "metasql_recorder_captured_total" in bundle["metrics"]

    def test_recorder_is_thread_safe_under_concurrent_considers(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=32, registry=registry)
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(100):
                    recorder.consider(
                        _record(good=bool(i % 2), question=f"{worker}-{i}")
                    )
                    recorder.entries(limit=4)
            except BaseException as exc:  # repolint: allow[broad-except] — surfacing hammer failures
                errors.append(exc)

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(6)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert not errors
        assert len(recorder) <= 32
        stats = recorder.stats()
        # Ring-buffer invariant: everything captured was either evicted
        # or is still held; at least every degraded record was captured.
        family = registry.get("metasql_recorder_captured_total")
        total_captured = sum(
            family.labels(reason=reason).value
            for reason in ("degraded", "slow")
        )
        assert total_captured == stats["evicted"] + len(recorder)
        assert total_captured >= 6 * 50


# ----------------------------------------------------------------------
# Ops endpoint (stub sources).


class TestOpsServer:
    @pytest.fixture()
    def server(self):
        registry = MetricsRegistry()
        registry.counter("ops_demo_total", "d").inc(3)
        state = {
            "health": {
                "ready": True,
                "accepting": True,
                "tenants": {
                    "default": {"breaker_open": False},
                    "acme": {"breaker_open": True},
                },
            }
        }
        recorder = FlightRecorder(registry=registry)
        recorder.consider(_record(good=False, tenant="acme"))
        ops = OpsServer(
            metrics=registry.render_prometheus,
            health=lambda: state["health"],
            slo=lambda: [
                {"slo": "avail", "firing": True},
                {"slo": "lat", "firing": False},
            ],
            recorder=lambda tenant, limit: recorder.entries(
                tenant=tenant, limit=limit
            ),
        )
        ops.start()
        yield ops, registry, state
        ops.close()

    def test_metrics_route_is_byte_identical_to_render(self, server):
        ops, registry, _ = server
        status, body = _get(f"{ops.url}/metrics")
        assert status == 200
        assert body == registry.render_prometheus()

    def test_healthz_and_readyz(self, server):
        ops, _, state = server
        status, body = _get(f"{ops.url}/healthz")
        assert status == 200 and json.loads(body)["ready"] is True
        status, body = _get(f"{ops.url}/readyz")
        assert status == 200 and json.loads(body) == {"ready": True}
        state["health"]["ready"] = False
        status, _body = _get(f"{ops.url}/readyz")
        assert status == 503

    def test_readyz_is_tenant_aware(self, server):
        ops, _, _ = server
        status, body = _get(f"{ops.url}/readyz?tenant=default")
        assert status == 200
        assert json.loads(body) == {"ready": True, "tenant": "default"}
        status, _body = _get(f"{ops.url}/readyz?tenant=acme")
        assert status == 503  # open breaker board
        status, _body = _get(f"{ops.url}/readyz?tenant=ghost")
        assert status == 404

    def test_slo_route_lists_firing_names(self, server):
        ops, _, _ = server
        status, body = _get(f"{ops.url}/slo")
        payload = json.loads(body)
        assert status == 200
        assert payload["firing"] == ["avail"]
        assert len(payload["slos"]) == 2

    def test_flightrecorder_route_filters(self, server):
        ops, _, _ = server
        status, body = _get(f"{ops.url}/debug/flightrecorder")
        payload = json.loads(body)
        assert status == 200 and payload["count"] == 1
        _status, body = _get(
            f"{ops.url}/debug/flightrecorder?tenant=globex"
        )
        assert json.loads(body)["count"] == 0
        _status, body = _get(
            f"{ops.url}/debug/flightrecorder?tenant=acme&limit=1"
        )
        assert json.loads(body)["count"] == 1

    def test_unknown_route_404s_with_route_table(self, server):
        ops, _, _ = server
        status, body = _get(f"{ops.url}/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["routes"]

    def test_unwired_source_404s(self):
        with OpsServer(metrics=lambda: "x 1\n") as ops:
            assert _get(f"{ops.url}/metrics")[0] == 200
            assert _get(f"{ops.url}/slo")[0] == 404
            assert _get(f"{ops.url}/healthz")[0] == 404

    def test_raising_source_yields_500_not_a_dead_listener(self):
        calls = {"n": 0}

        def broken() -> str:
            calls["n"] += 1
            raise RuntimeError("boom")

        with OpsServer(metrics=broken) as ops:
            status, body = _get(f"{ops.url}/metrics")
            assert status == 500 and "RuntimeError" in body
            # The listener survived the exception.
            status, _body = _get(f"{ops.url}/metrics")
            assert status == 500
        assert calls["n"] == 2

    def test_close_is_idempotent(self):
        ops = OpsServer(metrics=lambda: "x 1\n")
        ops.start()
        ops.close()
        ops.close()
        with pytest.raises(OSError):
            urllib.request.urlopen(f"{ops.url}/metrics", timeout=0.5)


# ----------------------------------------------------------------------
# MetricsRegistry label-family churn hammer.


def test_registry_label_family_churn_hammer():
    registry = MetricsRegistry()
    workers, laps = 8, 200
    errors: list[BaseException] = []

    def churn() -> None:
        try:
            for lap in range(laps):
                registry.counter(
                    "churn_total", "c", labelnames=("k",)
                ).labels(k=str(lap % 7)).inc()
                registry.gauge(
                    "churn_gauge", "g", labelnames=("k",)
                ).labels(k=str(lap % 5)).set(float(lap))
                registry.histogram(
                    "churn_seconds", "h", labelnames=("k",)
                ).labels(k=str(lap % 3)).observe(0.001 * lap)
        except BaseException as exc:  # repolint: allow[broad-except] — surfacing hammer failures
            errors.append(exc)

    pool = [threading.Thread(target=churn) for _ in range(workers)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert not errors
    counter = registry.get("churn_total")
    assert (
        sum(counter.labels(k=str(k)).value for k in range(7))
        == workers * laps
    )
    histogram = registry.get("churn_seconds")
    assert (
        sum(histogram.labels(k=str(k)).count for k in range(3))
        == workers * laps
    )
    registry.render_prometheus()  # still renders deterministically


# ----------------------------------------------------------------------
# opsctl.


class TestOpsctl:
    def _bundle(self, tmp_path) -> pathlib.Path:
        recorder = FlightRecorder(
            clock=lambda: 7.0, registry=MetricsRegistry()
        )
        for index in range(3):
            recorder.consider(
                _record(
                    good=False,
                    question=f"why {index}",
                    latency=0.2 + index,
                    faults=[
                        {"stage": "stage1", "error_type": "StageError"}
                    ],
                )
            )
        recorder.consider(
            _record(
                good=False,
                question="other",
                faults=[
                    {"stage": "generate", "error_type": "StageError"}
                ],
            )
        )
        return recorder.dump_bundle(
            tmp_path / "bundle.json",
            health={
                "ready": False,
                "accepting": True,
                "queue_depth": 0,
                "queue_capacity": 16,
                "degraded_rate": 0.5,
                "tenants": {"default": {"breaker_open": True}},
            },
            slo=[
                {
                    "slo": "availability",
                    "tenant": "",
                    "firing": True,
                    "compliance": 0.5,
                    "alerts": {"page": True, "ticket": False},
                }
            ],
        )

    def test_render_bundle_names_the_dominant_failing_stage(
        self, tmp_path
    ):
        report = opsctl.render_bundle(
            load_bundle(self._bundle(tmp_path))
        )
        assert "dominant failing stage: stage1" in report
        assert "generate=1" in report
        assert "availability" in report
        assert "breaker" in report
        assert "slowest captured requests" in report

    def test_render_bundle_surfaces_batch_occupancy(self, tmp_path):
        registry = MetricsRegistry()
        sizes = registry.histogram(
            "metasql_serve_batch_size",
            "batch sizes",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0),
        )
        for size in (1, 4, 8, 8, 8):
            sizes.observe(float(size))
        flushes = registry.counter(
            "metasql_serve_batch_flush_total",
            "flushes",
            labelnames=("reason",),
        )
        flushes.labels(reason="size").inc(3)
        flushes.labels(reason="tick").inc()
        flushes.labels(reason="deadline").inc()
        recorder = FlightRecorder(clock=lambda: 7.0, registry=registry)
        bundle = load_bundle(
            recorder.dump_bundle(tmp_path / "batched.json")
        )
        report = opsctl.render_bundle(bundle)
        assert (
            "batch occupancy: mean 5.8, p90<=8 "
            "(5 batches, 29 requests)" in report
        )
        assert (
            "batch flush reasons: size=3, deadline=1, tick=1" in report
        )
        # Bundles from a non-batching service render without the section.
        plain = opsctl.render_bundle(load_bundle(self._bundle(tmp_path)))
        assert "batch occupancy" not in plain

    def test_render_cli_exit_codes(self, tmp_path, capsys):
        bundle = self._bundle(tmp_path)
        assert opsctl.main(["render", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "MetaSQL incident report" in out
        assert (
            opsctl.main(["render", str(tmp_path / "missing.json")]) == 1
        )

    def test_poll_against_a_live_endpoint(self):
        with OpsServer(
            metrics=lambda: "up 1\n",
            health=lambda: {
                "ready": True,
                "accepting": True,
                "tenants": {},
            },
        ) as ops:
            out = io.StringIO()
            code = opsctl.poll(
                ops.url,
                endpoint="/metrics",
                count=2,
                sleep=lambda _s: None,
                out=out,
            )
            assert code == 0
            assert out.getvalue().count("up 1") == 2
            out = io.StringIO()
            assert opsctl.poll(ops.url, endpoint="/slo", out=out) == 1
            assert "404" in out.getvalue()

    def test_poll_unreachable_endpoint_fails_cleanly(self):
        out = io.StringIO()
        code = opsctl.poll("http://127.0.0.1:9", count=1, out=out)
        assert code == 1
        assert "unreachable" in out.getvalue()

    def test_tail_follows_a_journal(self, tmp_path):
        path = tmp_path / "tail.jsonl"
        with Journal(path, fsync=False) as journal:
            journal.append({"event": "a"})
            journal.append({"event": "b"})
        out = io.StringIO()
        code = opsctl.tail(path, max_records=2, out=out)
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_tail_cli_is_bounded_by_default(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        with Journal(path, fsync=False) as journal:
            journal.append({"event": "only"})
        assert (
            opsctl.main(["tail", str(path), "--max-records", "1"]) == 0
        )
        assert "only" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Service wiring (stub pipeline).


class TestServiceWiring:
    def test_config_validation(self):
        with pytest.raises(ConfigError, match="SloSpec"):
            ServiceConfig(slos=("not a spec",)).validate()
        with pytest.raises(ConfigError, match="recorder"):
            ServiceConfig(recorder_capacity=-1).validate()
        with pytest.raises(ConfigError, match="ops_port"):
            ServiceConfig(ops_port=70000).validate()

    def test_ops_layer_is_off_by_default(self):
        from tests.test_serve import StubPipeline

        with TranslationService(
            StubPipeline(),
            ServiceConfig(workers=1),
            registry=MetricsRegistry(),
        ) as service:
            assert service.slo_engine is None
            assert service.recorder is None
            assert service.ops_url is None
            assert service.ops_address is None
            with pytest.raises(ConfigError, match="recorder"):
                service.dump_bundle("nowhere.json")

    def test_config_slos_build_an_engine_on_the_service(self):
        from tests.test_serve import StubPipeline

        registry = MetricsRegistry()
        with TranslationService(
            StubPipeline(),
            ServiceConfig(workers=1, slos=default_slos()),
            registry=registry,
        ) as service:
            service.translate("q", _tiny_db(), timeout=10)
            statuses = {s.slo: s for s in service._slo_statuses()}
        assert statuses["availability"].total == 1
        assert statuses["availability"].bad == 0
        assert registry.get("metasql_slo_events_total").labels(
            slo="availability", tenant="", outcome="good"
        ).value == 1

    def test_recorder_captures_faulted_requests_only(self):
        from tests.test_serve import StubPipeline

        registry = MetricsRegistry()
        with TranslationService(
            StubPipeline(script=["ok", "fatal", "ok"]),
            ServiceConfig(workers=1, recorder_capacity=8),
            registry=registry,
        ) as service:
            db = _tiny_db()
            for question in ("a", "b", "c"):
                service.translate(question, db, timeout=10)
            entries = service.recorder.entries()
        assert [e["reason"] for e in entries] == ["fault"]
        assert entries[0]["record"]["question"] == "b"
        # The full report (span tree included) rode along.
        assert "faults" in entries[0]["report"]

    def test_ops_endpoint_serves_the_live_service(self, tmp_path):
        from tests.test_serve import StubPipeline

        registry = MetricsRegistry()
        with TranslationService(
            StubPipeline(script=["ok", "fatal"]),
            ServiceConfig(
                workers=1,
                slos=default_slos(),
                recorder_capacity=8,
                ops_port=0,
            ),
            registry=registry,
        ) as service:
            url = service.ops_url
            assert url is not None
            db = _tiny_db()
            service.translate("good", db, timeout=10)
            service.translate("bad", db, timeout=10)
            status, body = _get(f"{url}/metrics")
            assert status == 200
            assert body == service.metrics()  # byte-identical
            status, body = _get(f"{url}/healthz")
            health = json.loads(body)
            assert status == 200 and health["completed"] == 2
            assert _get(f"{url}/readyz")[0] == 200
            status, body = _get(f"{url}/slo")
            assert status == 200
            assert {s["slo"] for s in json.loads(body)["slos"]} == {
                "latency",
                "availability",
                "verify_demotion",
            }
            _status, body = _get(f"{url}/debug/flightrecorder")
            assert json.loads(body)["count"] == 1
            bundle_path = service.dump_bundle(tmp_path / "b.json")
        # Shutdown closed the endpoint.
        with pytest.raises(OSError):
            urllib.request.urlopen(f"{url}/healthz", timeout=0.5)
        bundle = load_bundle(bundle_path)
        assert bundle["health"]["completed"] == 2
        assert len(bundle["entries"]) == 1

    def test_swap_rollback_is_flight_recorded(self):
        from tests.test_serve import StubPipeline

        def corrupt_loader():
            raise CheckpointCorrupt("manifest checksum mismatch")

        with TranslationService(
            StubPipeline(),
            ServiceConfig(workers=1, recorder_capacity=4),
            registry=MetricsRegistry(),
        ) as service:
            with pytest.raises(TenantSwapError):
                service.swap(corrupt_loader)
            reasons = [e["reason"] for e in service.recorder.entries()]
        assert reasons == ["swap_rollback"]


# ----------------------------------------------------------------------
# End-to-end acceptance: real pipeline, ops endpoint, faults, deadlines.


class TestOpsEndToEnd:
    def test_service_under_fire_alerts_records_and_reports(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        examples = tiny_benchmark.dev.examples[:6]
        dbs = {
            example.db_id: tiny_benchmark.dev.database(example.db_id)
            for example in examples
        }
        registry = MetricsRegistry()
        journal = Journal(tmp_path / "ops.jsonl", fsync=False)
        clock = FakeClock()
        engine = SloEngine(
            default_slos(latency_threshold=30.0),
            clock=clock,
            journal=journal,
            registry=registry,
        )
        recorder = FlightRecorder(capacity=16, registry=registry)
        # The shared session pipeline carries a BreakerBoard; the fault
        # volume below opens the stage1 breaker, so restore it for the
        # tests that run after this one.
        try:
            self._drive_and_assert(
                trained_pipeline, examples, dbs, registry, journal,
                clock, engine, recorder, tmp_path,
            )
        finally:
            if trained_pipeline.breakers is not None:
                trained_pipeline.breakers.reset()

    def _drive_and_assert(
        self, trained_pipeline, examples, dbs, registry, journal,
        clock, engine, recorder, tmp_path,
    ):
        with TranslationService(
            trained_pipeline,
            ServiceConfig(workers=2, ops_port=0),
            registry=registry,
            journal=journal,
            slo_engine=engine,
            recorder=recorder,
        ) as service:
            url = service.ops_url

            def drive(deadline=None) -> None:
                for example in examples:
                    service.translate(
                        example.question,
                        dbs[example.db_id],
                        deadline=deadline,
                        timeout=60,
                    )

            # Phase 1 — healthy traffic: endpoint up, nothing firing.
            drive()
            assert _get(f"{url}/healthz")[0] == 200
            assert _get(f"{url}/readyz")[0] == 200
            assert not engine.alerting()

            # Phase 2 — injected stage faults plus a deadline-violating
            # burst, all inside the fast window on the synthetic clock.
            clock.advance(10.0)
            with FAULTS.inject("stage1.rank", times=None):
                drive()
                drive()
            drive(deadline=Deadline(1e-6))
            status, body = _get(f"{url}/slo")
            assert status == 200
            assert "availability" in json.loads(body)["firing"]
            assert engine.alerting()

            # Every faulted/degraded/deadline request was captured,
            # within the capacity bound.
            interesting = [
                record
                for record in read_journal(journal.path)
                if record.get("event") == "translate"
                and (
                    record.get("faults")
                    or record.get("degraded")
                    or record.get("deadline_expired")
                )
            ]
            captured = recorder.entries()
            assert interesting and captured
            assert len(captured) <= 16
            assert len(captured) == min(16, len(interesting))
            captured_questions = {
                entry["record"]["question"] for entry in captured
            }
            for record in interesting[-len(captured):]:
                assert record["question"] in captured_questions

            # /metrics is byte-identical to the in-process rendering.
            status, body = _get(f"{url}/metrics")
            assert status == 200 and body == service.metrics()
            assert "metasql_slo_alert_active" in body
            assert "metasql_recorder_entries" in body

            # Phase 3 — recovery: the bad events age out of every
            # window on the synthetic clock and the alert resolves.
            clock.advance(25000.0)
            engine.evaluate()
            assert not engine.alerting()
            _status, body = _get(f"{url}/slo")
            assert json.loads(body)["firing"] == []

            bundle_path = service.dump_bundle(tmp_path / "bundle.json")

        # The journal recorded the full alert lifecycle.
        events = read_journal(journal.path)
        alert_states = [
            (e["severity"], e["state"])
            for e in events
            if e["event"] == "slo_alert" and e["slo"] == "availability"
        ]
        assert ("page", "firing") in alert_states
        assert ("page", "resolved") in alert_states

        # The bundle + opsctl name the failing stage.
        report = opsctl.render_bundle(load_bundle(bundle_path))
        assert "dominant failing stage: stage1" in report
        out = io.StringIO()
        assert opsctl.render(bundle_path, out=out) == 0
        assert "stage1" in out.getvalue()
