"""Multi-tenant registry, router seam, quotas, and hot-swap tests.

Covers the tenancy layer's contracts:

- registry/quota plumbing (typed ``UnknownTenant``/``TenantOverloaded``/
  ``ConfigError``, token-bucket math on an injected clock);
- the epoch/refcount :class:`ShardGuard` (leases are atomic
  ``(pipeline, epoch)`` pairs; installs never tear them);
- zero-downtime hot swap with automatic rollback on a corrupt snapshot;
- per-tenant fault isolation through the service (one tenant's faults
  never leak into another's reports or breaker board);
- the single-tenant regression: routing through the Router is
  bit-identical to the pre-tenancy service;
- the swap-under-fire chaos test: two tenants hammered concurrently
  while one is hot-swapped mid-traffic with ``persist.save`` /
  ``serve.handle`` failpoints armed — zero dropped requests, no
  cross-tenant fault records, rollback on the corrupt snapshot;
- a hypothesis property: any interleaving of swap/lease operations
  preserves per-request shard-epoch consistency.

Everything is deterministic: clocks are injected, stub pipelines are
scripted, and the chaos test gates on futures rather than sleeps.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import RankedResult
from repro.core.resilience import (
    FAULTS,
    FaultRecord,
    InjectedFault,
    TranslationReport,
)
from repro.serve import CheckpointStore, ServiceConfig, TranslationService
from repro.serve.service import HealthSnapshot
from repro.sqlkit.errors import (
    CheckpointCorrupt,
    ConfigError,
    Overloaded,
    SqlError,
    TenantOverloaded,
    TenantSwapError,
    UnknownTenant,
)
from repro.tenancy import (
    Router,
    ShardGuard,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
)
from tests.test_serve import FakeClock, StubPipeline, _ranked

pytestmark = [pytest.mark.robustness, pytest.mark.tenancy]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


@pytest.fixture(scope="module")
def example_db(tiny_benchmark):
    example = tiny_benchmark.dev.examples[0]
    return tiny_benchmark.dev.database(example.db_id)


class EpochPipeline:
    """A stub shard that stamps its identity into every translation.

    ``tag`` identifies which shard generation served a request — the
    chaos test uses it to prove epoch consistency end to end.
    """

    breakers = None
    _trained = True

    def __init__(self, tag: str, fail_sites: tuple[str, ...] = ()) -> None:
        self.tag = tag
        self.fail_sites = fail_sites
        self.calls = 0
        self._lock = threading.Lock()

    def translate_ranked_report(self, question, db, compositions=None):
        with self._lock:
            self.calls += 1
        report = TranslationReport(question=question)
        if "translate" in self.fail_sites:
            report.record(
                FaultRecord(
                    stage="generate",
                    error_type="StageError",
                    error=f"scripted fault in shard {self.tag}",
                    fallback="empty",
                )
            )
            return RankedResult([], report)
        result = RankedResult([_ranked()], report)
        result.shard_tag = self.tag
        return result


# ----------------------------------------------------------------------
# Quotas.


class TestTokenBucket:
    def test_burst_then_refill_on_injected_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock.now)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]
        clock.advance(1.0)  # 2 tokens back
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock.now)
        clock.advance(3600.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_invalid_parameters_are_typed(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0)


class TestTenantQuota:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0},
            {"rate": -1.0},
            {"burst": 0},
            {"max_share": 0},
        ],
    )
    def test_invalid_quota_raises_config_error(self, kwargs):
        with pytest.raises(ConfigError) as excinfo:
            TenantQuota(**kwargs)
        assert isinstance(excinfo.value, (SqlError, ValueError))

    def test_default_quota_is_unmetered(self):
        assert TenantQuota().unmetered


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -2},
            {"queue_limit": 0},
            {"default_deadline": 0.0},
            {"default_deadline": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_cap": -1.0},
            {"health_window": 0},
        ],
    )
    def test_bad_values_fail_at_construction(self, kwargs):
        with pytest.raises(ConfigError) as excinfo:
            ServiceConfig(**kwargs)
        # Typed: rooted at SqlError, still a ValueError for old nets.
        assert isinstance(excinfo.value, SqlError)
        assert isinstance(excinfo.value, ValueError)

    def test_mutated_config_is_revalidated_by_the_service(self):
        config = ServiceConfig(workers=1)
        config.workers = 0  # mutation after construction
        with pytest.raises(ConfigError):
            TranslationService(StubPipeline(), config)


# ----------------------------------------------------------------------
# Registry and router.


class TestRegistry:
    def test_register_resolve_and_unknown(self):
        registry = TenantRegistry()
        registry.register("acme", StubPipeline())
        router = Router(registry)
        assert router.resolve("acme").tenant_id == "acme"
        with pytest.raises(UnknownTenant):
            router.resolve("nobody")

    def test_duplicate_registration_is_a_config_error(self):
        registry = TenantRegistry()
        registry.register("acme", StubPipeline())
        with pytest.raises(ConfigError):
            registry.register("acme", StubPipeline())

    def test_unaddressed_resolution_prefers_default_then_singleton(self):
        router = Router.single(StubPipeline())
        assert router.resolve(None).tenant_id == "default"
        lone = Router()
        lone.register("only", StubPipeline())
        assert lone.resolve(None).tenant_id == "only"
        multi = Router()
        multi.register("a", StubPipeline())
        multi.register("b", StubPipeline())
        with pytest.raises(UnknownTenant):
            multi.resolve(None)

    def test_quota_admission_and_release(self):
        router = Router()
        router.register(
            "metered", StubPipeline(), quota=TenantQuota(max_share=2)
        )
        tenant = router.admit("metered")
        router.admit("metered")
        with pytest.raises(TenantOverloaded) as excinfo:
            router.admit("metered")
        assert excinfo.value.reason == "queue-share"
        assert isinstance(excinfo.value, Overloaded)  # transient for clients
        tenant.release()
        router.admit("metered")  # slot freed


# ----------------------------------------------------------------------
# Shard guard: epoch/refcount swap protocol.


class TestShardGuard:
    def test_lease_is_an_atomic_pipeline_epoch_pair(self):
        old, new = StubPipeline(), StubPipeline()
        guard = ShardGuard(old)
        with guard.acquire() as lease:
            assert (lease.pipeline, lease.epoch) == (old, 1)
            epoch = guard.install(new)
            assert epoch == 2
            # The in-flight lease still points at the old shard.
            assert lease.pipeline is old
            assert guard.inflight(1) == 1
        assert guard.inflight(1) == 0
        with guard.acquire() as lease:
            assert (lease.pipeline, lease.epoch) == (new, 2)

    def test_drain_waits_for_old_epoch(self):
        guard = ShardGuard(StubPipeline())
        release = threading.Event()
        leased = threading.Event()

        def hold():
            with guard.acquire():
                leased.set()
                assert release.wait(10)

        worker = threading.Thread(target=hold, daemon=True)
        worker.start()
        assert leased.wait(10)
        guard.install(StubPipeline())
        assert not guard.drain(1, timeout=0.05)  # still held
        release.set()
        assert guard.drain(1, timeout=10)
        worker.join(timeout=10)

    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.sampled_from(["lease", "swap"]), min_size=1, max_size=24
        )
    )
    def test_any_interleaving_preserves_epoch_consistency(self, operations):
        """Hypothesis property: a lease's pipeline always matches its
        epoch — under any interleaving of swaps and leases, a request
        can never observe shard N+1 stamped with epoch N or vice versa.
        """
        shards = [EpochPipeline(tag="epoch-1")]
        guard = ShardGuard(shards[0])
        held = []
        for op in operations:
            if op == "swap":
                shard = EpochPipeline(tag=f"epoch-{len(shards) + 1}")
                shards.append(shard)
                guard.install(shard)
            else:
                ctx = guard.acquire()
                lease = ctx.__enter__()
                held.append((ctx, lease))
        try:
            for _, lease in held:
                assert lease.pipeline.tag == f"epoch-{lease.epoch}"
                assert lease.pipeline is shards[lease.epoch - 1]
            # Refcounts account for every held lease, per epoch.
            assert guard.inflight() == len(held)
        finally:
            for ctx, _ in held:
                ctx.__exit__(None, None, None)
        assert guard.inflight() == 0


# ----------------------------------------------------------------------
# Hot swap through the router.


class TestRouterSwap:
    def test_swap_installs_new_epoch_and_counts_ok(self):
        from repro.obs.metrics import MetricsRegistry, registry_scope

        router = Router.single(EpochPipeline("epoch-1"))
        registry = MetricsRegistry()
        with registry_scope(registry):
            epoch = router.swap("default", EpochPipeline("epoch-2"))
        assert epoch == 2
        with router.lease() as lease:
            assert lease.pipeline.tag == "epoch-2"
        swaps = registry.get("metasql_tenant_swap_total")
        assert swaps.labels(tenant="default", outcome="ok").value == 1

    def test_corrupt_snapshot_rolls_back_with_typed_error(self):
        from repro.obs.metrics import MetricsRegistry, registry_scope

        router = Router.single(EpochPipeline("epoch-1"))

        def corrupt_loader():
            raise CheckpointCorrupt("manifest checksum mismatch")

        registry = MetricsRegistry()
        with registry_scope(registry):
            with pytest.raises(TenantSwapError) as excinfo:
                router.swap("default", corrupt_loader)
        assert excinfo.value.epoch == 1
        # Automatic rollback: previous shard keeps serving.
        with router.lease() as lease:
            assert (lease.pipeline.tag, lease.epoch) == ("epoch-1", 1)
        swaps = registry.get("metasql_tenant_swap_total")
        assert swaps.labels(tenant="default", outcome="rollback").value == 1

    def test_untrained_snapshot_is_rejected(self):
        router = Router.single(EpochPipeline("epoch-1"))
        impostor = EpochPipeline("epoch-2")
        impostor._trained = False
        with pytest.raises(TenantSwapError):
            router.swap("default", impostor)
        assert router.resolve("default").shard.epoch == 1

    def test_swap_failpoint_rolls_back(self):
        router = Router.single(EpochPipeline("epoch-1"))
        with FAULTS.inject("router.swap"):
            with pytest.raises(TenantSwapError):
                router.swap("default", EpochPipeline("epoch-2"))
        assert router.resolve("default").shard.epoch == 1

    def test_swap_from_checkpoint_store(
        self, trained_pipeline, tiny_benchmark, tmp_path
    ):
        store = CheckpointStore(tmp_path / "store")
        store.save(trained_pipeline)
        router = Router.single(trained_pipeline)
        epoch = router.swap("default", store)
        assert epoch == 2
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        with router.lease() as lease:
            result = lease.pipeline.translate_ranked_report(
                example.question, db
            )
        assert result is not None

    def test_swap_journal_event_is_fault_record_free(self, tmp_path):
        from repro.obs.journal import Journal, read_journal

        path = tmp_path / "swap.jsonl"
        router = Router.single(EpochPipeline("epoch-1"), journal=Journal(path))
        router.swap("default", EpochPipeline("epoch-2"))
        try:
            router.swap("default", lambda: (_ for _ in ()).throw(
                CheckpointCorrupt("torn")
            ))
        except TenantSwapError:
            pass
        router.journal.close()
        records = read_journal(path)
        outcomes = [
            record["outcome"]
            for record in records
            if record["event"] == "tenant_swap"
        ]
        assert outcomes == ["ok", "rollback"]
        assert all("faults" not in record for record in records)


# ----------------------------------------------------------------------
# Service integration: isolation, health, single-tenant regression.


def _two_tenant_service(
    quota_a: TenantQuota | None = None, workers: int = 2, queue_limit: int = 64
):
    router = Router()
    router.register("alpha", EpochPipeline("epoch-1"), quota=quota_a)
    router.register("beta", EpochPipeline("epoch-1"))
    service = TranslationService(
        router, ServiceConfig(workers=workers, queue_limit=queue_limit)
    )
    return service, router


class TestServiceTenancy:
    def test_noisy_tenant_is_shed_without_touching_neighbour(
        self, example_db
    ):
        service, router = _two_tenant_service(
            quota_a=TenantQuota(rate=1e-6, burst=2)
        )
        with service:
            futures = []
            rejected = 0
            for _ in range(10):  # tenant A floods: burst of 2, then shed
                try:
                    futures.append(
                        service.submit("q", example_db, tenant="alpha")
                    )
                except TenantOverloaded:
                    rejected += 1
            assert rejected == 8
            # Tenant B's admission path is untouched.
            b_futures = [
                service.submit("q", example_db, tenant="beta")
                for _ in range(10)
            ]
            for future in futures + b_futures:
                assert future.result(timeout=30) is not None
            health = service.health()
        assert health.tenants["alpha"]["rejected"] == 8
        assert health.tenants["beta"]["rejected"] == 0
        assert health.rejected == 8

    def test_faults_do_not_cross_tenants(self, example_db):
        router = Router()
        faulty = EpochPipeline("epoch-1", fail_sites=("translate",))
        healthy = EpochPipeline("epoch-1")
        router.register("faulty", faulty)
        router.register("healthy", healthy)
        with TranslationService(
            router, ServiceConfig(workers=2, max_retries=0)
        ) as service:
            bad = service.submit("q", example_db, tenant="faulty")
            good = service.submit("q", example_db, tenant="healthy")
            bad_result = bad.result(timeout=30)
            good_result = good.result(timeout=30)
        assert bad_result.report.faults
        assert not good_result.report.faults
        assert good_result.translations

    def test_unknown_tenant_is_typed(self, example_db):
        with TranslationService(
            StubPipeline(), ServiceConfig(workers=1)
        ) as service:
            with pytest.raises(UnknownTenant):
                service.submit("q", example_db, tenant="ghost")

    def test_health_carries_per_tenant_section_and_roundtrip(
        self, example_db
    ):
        service, router = _two_tenant_service()
        with service:
            service.translate("q", example_db, tenant="alpha", timeout=30)
            service.swap(EpochPipeline("epoch-2"), tenant="alpha")
            health = service.health()
        alpha = health.tenants["alpha"]
        assert alpha["epoch"] == 2
        assert alpha["last_swap_outcome"] == "ok"
        assert alpha["last_swap_at"] is not None
        assert "breakers" in alpha and "pending" in alpha
        assert health.tenants["beta"]["epoch"] == 1
        # as_dict/from_dict round-trip keeps the tenant section.
        clone = HealthSnapshot.from_dict(health.as_dict())
        assert clone.tenants == health.tenants
        assert clone.ready == health.ready

    def test_open_breaker_board_makes_service_not_ready(self):
        snapshot = HealthSnapshot(
            accepting=True,
            queue_depth=0,
            queue_capacity=4,
            workers=1,
            in_flight=0,
            completed=0,
            rejected=0,
            retried=0,
            failed=0,
            degraded_rate=0.0,
            deadline_expired=0,
            tenants={
                "ok": {"breaker_open": False},
                "stuck": {"breaker_open": True},
            },
        )
        assert not snapshot.ready
        healthy = HealthSnapshot.from_dict(
            {**snapshot.as_dict(), "tenants": {"ok": {"breaker_open": False}}}
        )
        assert healthy.ready

    def test_single_tenant_router_is_bit_identical_to_direct_pipeline(
        self, trained_pipeline, tiny_benchmark
    ):
        """Regression: the Router seam must not change the single-tenant
        translation output in any way."""
        examples = tiny_benchmark.dev.examples[:4]
        direct = []
        for example in examples:
            db = tiny_benchmark.dev.database(example.db_id)
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
            direct.append([t.sql for t in result.translations])
        with TranslationService(
            trained_pipeline, ServiceConfig(workers=1)
        ) as service:
            routed = []
            for example in examples:
                db = tiny_benchmark.dev.database(example.db_id)
                result = service.translate(example.question, db, timeout=60)
                routed.append([t.sql for t in result.translations])
        assert routed == direct


# ----------------------------------------------------------------------
# Swap under fire: the chaos test.


class TestSwapUnderFire:
    def test_concurrent_hammer_swap_and_failpoints(
        self, example_db, trained_pipeline
    ):
        """Hammer two tenants concurrently, hot-swap tenant A's shard
        mid-traffic, and arm ``persist.save``/``serve.handle``
        failpoints.  Asserts: zero dropped requests (every admitted
        future resolves), no cross-tenant fault records, epoch
        consistency for every completed request, and rollback on a
        corrupt snapshot.
        """
        shard_a1 = EpochPipeline("epoch-1")
        shard_b = EpochPipeline("epoch-1")
        router = Router()
        router.register(
            "alpha", shard_a1, quota=TenantQuota(max_share=48)
        )
        router.register("beta", shard_b)
        config = ServiceConfig(workers=4, queue_limit=256, max_retries=0)
        submitted: dict[str, list] = {"alpha": [], "beta": []}
        overloaded = {"alpha": 0, "beta": 0}
        stop = threading.Event()

        with TranslationService(router, config) as service:

            def hammer(tenant: str) -> None:
                while not stop.is_set():
                    try:
                        submitted[tenant].append(
                            service.submit("q", example_db, tenant=tenant)
                        )
                    except (TenantOverloaded, Overloaded):
                        overloaded[tenant] += 1

            threads = [
                threading.Thread(target=hammer, args=(t,), daemon=True)
                for t in ("alpha", "beta")
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()

            # Mid-traffic: a failpoint storm on the serve path...
            FAULTS.arm("serve.handle", times=5)
            # ...a corrupt-snapshot swap attempt (must roll back)...
            def corrupt():
                raise CheckpointCorrupt("bit flip")

            with pytest.raises(TenantSwapError):
                service.swap(corrupt, tenant="alpha")
            assert router.resolve("alpha").shard.epoch == 1
            # ...and a good swap while both tenants are under load.
            epoch = service.swap(EpochPipeline("epoch-2"), tenant="alpha")
            assert epoch == 2
            # persist.save fires mid-write while traffic flows: a torn
            # checkpoint save must not disturb serving either tenant.
            FAULTS.arm("persist.save", times=1)
            try:
                import tempfile

                with tempfile.TemporaryDirectory() as tmp:
                    store = CheckpointStore(tmp)
                    with pytest.raises(SqlError):
                        store.save(trained_pipeline)
                    assert store.snapshots() == []  # torn save left no litter
            finally:
                FAULTS.disarm("persist.save")

            stop.set()
            for thread in threads:
                thread.join(timeout=30)

            results = {"alpha": [], "beta": []}
            dropped = 0
            for tenant, futures in submitted.items():
                for future in futures:
                    try:
                        results[tenant].append(future.result(timeout=60))
                    except InjectedFault:
                        pass  # accounted: the armed serve.handle storm
                    except Exception:
                        dropped += 1
            health = service.health()

        # Zero dropped requests: every admitted future resolved to a
        # result or to the (typed, armed) injected fault.
        assert dropped == 0
        assert len(results["alpha"]) + len(results["beta"]) > 0
        # No cross-tenant fault records: tenant B never saw a pipeline
        # fault (the serve.handle storm surfaces as the typed exception
        # above, never as a FaultRecord on another tenant's report).
        for result in results["beta"]:
            assert not result.report.faults
            assert result.shard_tag == "epoch-1"
        # Epoch consistency: every alpha request was served entirely by
        # the shard generation matching one installed epoch.
        tags = {result.shard_tag for result in results["alpha"]}
        assert tags <= {"epoch-1", "epoch-2"}
        # The swap was recorded on the tenant section: rollback then ok.
        alpha = health.tenants["alpha"]
        assert alpha["epoch"] == 2
        assert alpha["swaps_ok"] == 1
        assert alpha["swaps_rolled_back"] == 1
        # The old shard fully drained.
        assert router.resolve("alpha").shard.inflight(1) == 0


class TestJournalAnalysis:
    def test_aggregation_folds_per_tenant_sections(
        self, example_db, tmp_path
    ):
        from repro.eval.journal_analysis import aggregate_journal

        journal_path = tmp_path / "events.jsonl"
        router = Router()
        router.register("alpha", EpochPipeline("epoch-1"))
        router.register(
            "beta", EpochPipeline("epoch-1", fail_sites=("translate",))
        )
        config = ServiceConfig(
            workers=1, max_retries=0, journal_path=journal_path
        )
        with TranslationService(router, config) as service:
            service.translate("q1", example_db, tenant="alpha", timeout=30)
            service.swap(EpochPipeline("epoch-2"), tenant="alpha")
            service.translate("q2", example_db, tenant="alpha", timeout=30)
            service.translate("q3", example_db, tenant="beta", timeout=30)
        summary = aggregate_journal(journal_path)
        alpha = summary.by_tenant["alpha"]
        beta = summary.by_tenant["beta"]
        assert (alpha.total, alpha.faults) == (2, 0)
        assert alpha.swaps == {"ok": 1}
        assert alpha.max_epoch == 2
        assert (beta.total, beta.faults) == (1, 1)
        assert beta.max_epoch == 1
        assert "by tenant:" in summary.render()
        assert summary.as_dict()["by_tenant"]["alpha"]["swaps"] == {"ok": 1}

    def test_pre_tenancy_journals_keep_a_bare_render(self, tmp_path):
        from repro.eval.journal_analysis import aggregate_journal
        from repro.obs.journal import Journal

        path = tmp_path / "old.jsonl"
        journal = Journal(path)
        journal.append({"event": "translate", "ok": True, "translations": 1})
        journal.close()
        summary = aggregate_journal(path)
        assert summary.by_tenant == {}
        assert "by tenant:" not in summary.render()


# ----------------------------------------------------------------------
# Checkpoint store satellites: skip observability + prune.


class TestCheckpointSatellites:
    def test_skipped_corrupt_snapshot_is_counted_and_journaled(
        self, trained_pipeline, tmp_path
    ):
        from repro.obs.journal import Journal, read_journal
        from repro.obs.metrics import MetricsRegistry, registry_scope

        store = CheckpointStore(tmp_path / "store")
        store.save(trained_pipeline)
        newest = store.save(trained_pipeline)
        (newest / "manifest.json").write_text("{ torn")
        journal_path = tmp_path / "store.jsonl"
        store.journal = Journal(journal_path)
        registry = MetricsRegistry()
        with registry_scope(registry):
            pipeline = store.load_latest()
        store.journal.close()
        assert pipeline is not None
        counter = registry.get("metasql_checkpoint_skipped_corrupt_total")
        assert counter is not None and counter.value >= 1
        records = read_journal(journal_path)
        skips = [r for r in records if r["event"] == "checkpoint_skipped"]
        assert skips and skips[0]["snapshot"] == newest.name
        assert "error" in skips[0]

    def test_prune_deletes_stale_rotations_and_keeps_latest(
        self, trained_pipeline, tmp_path
    ):
        store = CheckpointStore(tmp_path / "store", keep=10)
        for _ in range(4):
            store.save(trained_pipeline)
        assert len(store.snapshots()) == 4
        deleted = store.prune(keep=2)
        assert deleted == ["ckpt-00000001", "ckpt-00000002"]
        remaining = [path.name for path in store.snapshots()]
        assert remaining == ["ckpt-00000003", "ckpt-00000004"]
        # The LATEST pointer's snapshot survives even keep=1.
        store.prune(keep=1)
        assert [p.name for p in store.snapshots()] == ["ckpt-00000004"]
        assert store.load_latest() is not None

    def test_prune_validates_keep(self, tmp_path):
        store = CheckpointStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.prune(keep=0)
