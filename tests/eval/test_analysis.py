"""Failure-analysis tests (Section IV-E taxonomy)."""

import pytest

from repro.eval.analysis import analyze_failures


class TestFailureAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, trained_pipeline, tiny_benchmark):
        return analyze_failures(
            trained_pipeline, tiny_benchmark.dev, limit=50
        )

    def test_accounting(self, analysis):
        assert analysis.correct + len(analysis.cases) == analysis.total

    def test_categories_valid(self, analysis):
        valid = {
            "metadata mismatch", "auto-regressive decoding", "ranking",
        }
        assert all(case.category in valid for case in analysis.cases)

    def test_counts_sum(self, analysis):
        assert sum(analysis.counts().values()) == len(analysis.cases)

    def test_render(self, analysis):
        text = analysis.render()
        assert "Failure analysis" in text
        assert "ranking" in text
