"""Evaluation harness tests."""

import pytest

from repro.eval.evaluate import (
    EvalRecord,
    EvalResult,
    evaluate_metasql,
    evaluate_model,
    statement_types,
)
from repro.eval.report import delta, format_table, pct
from repro.sqlkit.parser import parse_sql


class TestStatementTypes:
    def test_orderby(self):
        assert "orderby" in statement_types(
            parse_sql("SELECT a FROM t ORDER BY b")
        )

    def test_groupby(self):
        assert "groupby" in statement_types(
            parse_sql("SELECT a FROM t GROUP BY a")
        )

    def test_nested_from_subquery_predicate_and_setop(self):
        assert "nested" in statement_types(
            parse_sql("SELECT a FROM t WHERE b IN (SELECT c FROM u)")
        )
        assert "nested" in statement_types(
            parse_sql("SELECT a FROM t UNION SELECT a FROM u")
        )

    def test_negation(self):
        assert "negation" in statement_types(
            parse_sql("SELECT a FROM t WHERE b != 1")
        )
        assert "negation" in statement_types(
            parse_sql("SELECT a FROM t WHERE b NOT IN (SELECT c FROM u)")
        )

    def test_plain_has_no_tags(self):
        assert statement_types(parse_sql("SELECT a FROM t")) == set()


class TestEvaluateModel:
    @pytest.fixture(scope="class")
    def result(self, fitted_lgesql, tiny_benchmark):
        return evaluate_model(
            fitted_lgesql, tiny_benchmark.dev, limit=50
        )

    def test_record_count(self, result):
        assert len(result.records) == 50

    def test_em_between_zero_and_one(self, result):
        assert 0.0 <= result.em <= 1.0

    def test_precision_monotone(self, result):
        assert result.precision_at(1) <= result.precision_at(3)
        assert result.precision_at(3) <= result.precision_at(5)

    def test_mrr_at_least_p1(self, result):
        assert result.mrr >= result.precision_at(1) - 1e-9

    def test_hardness_breakdown_covers_levels(self, result):
        breakdown = result.em_by_hardness()
        assert set(breakdown) == {"easy", "medium", "hard", "extra"}

    def test_easy_at_least_extra(self, result):
        breakdown = result.em_by_hardness()
        assert breakdown["easy"] >= breakdown["extra"]

    def test_statement_type_breakdown(self, result):
        breakdown = result.em_by_statement_type()
        assert set(breakdown) == {"orderby", "groupby", "nested", "negation"}


class TestEvaluateMetaSQL:
    def test_pipeline_evaluation(self, trained_pipeline, tiny_benchmark):
        result = evaluate_metasql(
            trained_pipeline, tiny_benchmark.dev, limit=25
        )
        assert len(result.records) == 25
        assert 0.0 <= result.em <= 1.0
        assert 0.0 <= result.ex <= 1.0


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(
            ["a", "bb"], [["x", 0.5], ["longer", 0.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "50.0" in text and "25.0" in text

    def test_pct(self):
        assert pct(0.774) == "77.4"

    def test_delta_sign(self):
        assert delta(0.774, 0.751) == "(+2.3)"
        assert delta(0.70, 0.75).startswith("(-")
