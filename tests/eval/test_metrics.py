"""Metric tests: EM/EX/Precision@K/MRR."""

import pytest

from repro.eval.metrics import (
    execution_match,
    mrr,
    precision_at_k,
    ranked_exact_flags,
)
from repro.sqlkit.parser import parse_sql


class TestExecutionMatch:
    def test_identical_queries(self, world_db):
        query = parse_sql("SELECT name FROM country")
        assert execution_match(query, query, world_db)

    def test_equivalent_syntax(self, world_db):
        a = parse_sql(
            "SELECT population FROM country ORDER BY population DESC LIMIT 1"
        )
        b = parse_sql("SELECT max(population) FROM country")
        assert execution_match(a, b, world_db)

    def test_different_results(self, world_db):
        a = parse_sql("SELECT name FROM country")
        b = parse_sql("SELECT name FROM country WHERE continent = 'Asia'")
        assert not execution_match(a, b, world_db)

    def test_order_sensitive_when_gold_ordered(self, world_db):
        ordered = parse_sql("SELECT name FROM country ORDER BY population")
        reverse = parse_sql(
            "SELECT name FROM country ORDER BY population DESC"
        )
        assert not execution_match(reverse, ordered, world_db)

    def test_order_insensitive_otherwise(self, world_db):
        a = parse_sql("SELECT name FROM country ORDER BY name")
        b = parse_sql("SELECT name FROM country")
        assert execution_match(a, b, world_db)

    def test_execution_error_is_miss(self, world_db):
        bad = parse_sql("SELECT nonexistent FROM country")
        good = parse_sql("SELECT name FROM country")
        assert not execution_match(bad, good, world_db)


class TestRankingMetrics:
    HITS = [
        [True, False, False],
        [False, True, False],
        [False, False, False],
        [False, False, True],
    ]

    def test_precision_at_1(self):
        assert precision_at_k(self.HITS, 1) == 0.25

    def test_precision_at_3(self):
        assert precision_at_k(self.HITS, 3) == 0.75

    def test_precision_monotone_in_k(self):
        assert precision_at_k(self.HITS, 1) <= precision_at_k(self.HITS, 3)

    def test_mrr_value(self):
        # ranks: 1, 2, none, 3 -> (1 + 0.5 + 0 + 1/3) / 4
        assert mrr(self.HITS) == pytest.approx((1 + 0.5 + 1 / 3) / 4)

    def test_mrr_cutoff(self):
        hits = [[False] * 5 + [True]]
        assert mrr(hits, cutoff=5) == 0.0

    def test_empty_lists(self):
        assert precision_at_k([], 1) == 0.0
        assert mrr([]) == 0.0

    def test_ranked_exact_flags(self):
        gold = parse_sql("SELECT a FROM t")
        candidates = [
            parse_sql("SELECT b FROM t"),
            parse_sql("SELECT a FROM t"),
        ]
        assert ranked_exact_flags(candidates, gold) == [False, True]
