"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import ClassifierConfig
from repro.core.metadata import QueryMetadata
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.core.rank_stage1 import Stage1Config
from repro.core.rank_stage2 import Stage2Config
from repro.core.resilience import (
    FAILPOINTS,
    FAULTS,
    FaultInjector,
    InjectedFault,
    TranslationReport,
)
from repro.core.values import ground_values
from repro.eval.metrics import execution_match
from repro.schema.database import Database
from repro.schema.executor import ExecutionBudget, execute
from repro.schema.schema import NUMBER, Column, Schema, Table
from repro.sqlkit.errors import (
    ExecutionBudgetError,
    PipelineStateError,
    SqlError,
    SqlExecutionError,
)
from repro.sqlkit.parser import parse_sql

pytestmark = pytest.mark.robustness

#: The failpoints crossed by ``translate_ranked``.  ``executor.execute``
#: is reached by the EX metric and the verify stage (covered
#: separately); ``repair.regenerate`` only fires when the verified top-1
#: hard-fails (exercised in ``tests/test_verify_repair.py``); the
#: persist and serve sites belong to the durability/serving layer and
#: are exercised in ``tests/test_serve.py``; the router site belongs to
#: the tenancy layer and is exercised in ``tests/test_tenancy.py``.
NON_TRANSLATE_FAILPOINTS = {
    "executor.execute",
    "repair.regenerate",
    "persist.save",
    "persist.finalize",
    "serve.handle",
    "router.swap",
}
PIPELINE_FAILPOINTS = [
    site for site in FAILPOINTS if site not in NON_TRANSLATE_FAILPOINTS
]


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Never leak an armed failpoint into another test."""
    yield
    FAULTS.disarm()


@pytest.fixture()
def empty_db():
    schema = Schema(
        db_id="empty",
        tables=(Table("t", (Column("a"), Column("n", NUMBER))),),
    )
    return Database(schema)


class TestExecutorRobustness:
    def test_empty_table_queries(self, empty_db):
        assert execute(parse_sql("SELECT a FROM t"), empty_db) == []
        assert execute(parse_sql("SELECT count(*) FROM t"), empty_db) == [(0,)]
        assert execute(
            parse_sql("SELECT a FROM t ORDER BY n DESC LIMIT 3"), empty_db
        ) == []

    def test_unknown_column_raises_sql_error(self, world_db):
        with pytest.raises(SqlError):
            execute(parse_sql("SELECT bogus FROM country"), world_db)

    def test_unknown_table_raises_sql_error(self, world_db):
        with pytest.raises(SqlError):
            execute(parse_sql("SELECT a FROM bogus"), world_db)

    def test_aggregate_without_group_context(self, world_db):
        # HAVING-style aggregate in WHERE is invalid: surfaced as SqlError.
        with pytest.raises(SqlError):
            execute(
                parse_sql("SELECT name FROM country WHERE count(*) > 1"),
                world_db,
            )

    def test_division_by_zero_yields_null(self, world_db):
        rows = execute(
            parse_sql("SELECT population / 0 FROM country LIMIT 1"), world_db
        )
        assert rows == [(None,)]

    def test_mixed_type_comparison_does_not_crash(self, world_db):
        rows = execute(
            parse_sql("SELECT name FROM country WHERE population > 'abc'"),
            world_db,
        )
        assert rows == []


class TestModelRobustness:
    def test_gibberish_question_still_decodes(
        self, fitted_lgesql, tiny_benchmark
    ):
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate("qwxz blorp 77 zzz", db)
        assert isinstance(candidates, list)

    def test_empty_question(self, fitted_lgesql, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate("", db)
        assert isinstance(candidates, list)

    def test_unknown_metadata_tags_relaxed(
        self, trained_pipeline, tiny_benchmark
    ):
        """A metadata condition whose tag-set was never observed should not
        crash decoding — the model relaxes to soft-tag matching."""
        db = tiny_benchmark.dev.database("pets")
        weird = QueryMetadata(
            tags=frozenset({"project", "union", "group", "having"}),
            rating=950,
        )
        candidates = trained_pipeline.model.translate(
            "students per major", db, metadata=weird
        )
        assert isinstance(candidates, list)

    def test_pipeline_on_gibberish(self, trained_pipeline, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        ranked = trained_pipeline.translate_ranked("zz qq pp 3", db)
        assert isinstance(ranked, list)


class TestGroundingRobustness:
    def test_grounding_idempotent(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE continent = 'value'"
        )
        question = "countries in Asia"
        once = ground_values(query, question, world_db)
        twice = ground_values(once, question, world_db)
        assert once == twice

    def test_grounding_without_any_evidence(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population > 'value'"
        )
        grounded = ground_values(query, "no numbers here", world_db)
        # Placeholder survives; executing it just returns no rows.
        rows = execute(grounded, world_db)
        assert rows == []


# ----------------------------------------------------------------------
# Fault-injection registry.


class TestFaultInjector:
    def test_unknown_site_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown failpoint"):
            injector.arm("no.such.site")

    def test_arm_fire_disarm(self):
        injector = FaultInjector()
        injector.arm("stage1.rank", times=2)
        for __ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("stage1.rank")
        injector.fire("stage1.rank")  # budget of 2 exhausted: no-op
        assert injector.fired("stage1.rank") == 2
        injector.disarm("stage1.rank")
        injector.fire("stage1.rank")

    def test_other_sites_unaffected(self):
        injector = FaultInjector()
        injector.arm("compose")
        injector.fire("stage2.rank")  # not armed: no-op

    def test_context_manager_disarms(self):
        injector = FaultInjector()
        with injector.inject("compose", times=None):
            with pytest.raises(InjectedFault):
                injector.fire("compose")
        injector.fire("compose")

    def test_custom_exception_factory(self):
        injector = FaultInjector()
        injector.arm("executor.execute", exc=lambda: SqlExecutionError("boom"))
        with pytest.raises(SqlExecutionError, match="boom"):
            injector.fire("executor.execute")

    def test_custom_exception_instance(self):
        injector = FaultInjector()
        injector.arm("executor.execute", exc=SqlExecutionError("ready-made"))
        with pytest.raises(SqlExecutionError, match="ready-made"):
            injector.fire("executor.execute")

    def test_transient_flag_carried(self):
        injector = FaultInjector()
        injector.arm("stage1.rank", transient=True)
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("stage1.rank")
        assert excinfo.value.transient is True
        assert excinfo.value.site == "stage1.rank"

    def test_registered_sites_cover_the_pipeline(self):
        assert set(PIPELINE_FAILPOINTS) | NON_TRANSLATE_FAILPOINTS == set(
            FAULTS.sites
        )


# ----------------------------------------------------------------------
# Graceful degradation at every failpoint.


class TestDegradationChain:
    @pytest.mark.parametrize("site", PIPELINE_FAILPOINTS)
    def test_single_fault_degrades_instead_of_raising(
        self, site, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        with FAULTS.inject(site, times=1):
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        assert isinstance(result.translations, list)
        assert result.report.degraded
        assert site in [record.site for record in result.report.faults]
        if site != "generator.generate":
            # Degraded, but a ranked list still comes out.
            assert result.translations

    @pytest.mark.parametrize("site", PIPELINE_FAILPOINTS)
    def test_translate_never_raises_under_single_fault(
        self, site, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[1]
        db = tiny_benchmark.dev.database(example.db_id)
        with FAULTS.inject(site, times=1):
            query = trained_pipeline.translate(example.question, db)
        report = trained_pipeline.last_report
        assert site in [record.site for record in report.faults]
        if site == "generator.generate":
            assert query is None  # clean None, not an exception
        else:
            assert query is not None

    def test_persistent_generation_fault_yields_clean_none(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        with FAULTS.inject("generator.generate", times=None):
            assert trained_pipeline.translate(example.question, db) is None
        assert trained_pipeline.last_report.degraded

    def test_transient_fault_recovers_via_retry(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        baseline = trained_pipeline.translate_ranked(example.question, db)
        with FAULTS.inject("stage1.rank", times=1, transient=True):
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        # Retried and fully recovered: same output, not degraded.
        assert not result.report.degraded
        assert "retry" in result.report.fallbacks()
        assert [r.sql for r in result.translations] == [
            r.sql for r in baseline
        ]

    def test_stage2_fault_falls_back_to_stage1_order(
        self, trained_pipeline, tiny_benchmark
    ):
        from repro.core.verify import VerifyConfig

        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        # Verify off: this test asserts the raw stage-1 ordering, which
        # the (orthogonal) verify stage is allowed to reshuffle.
        saved = trained_pipeline.config.verify
        trained_pipeline.config.verify = VerifyConfig(policy="off")
        try:
            with FAULTS.inject("stage2.rank", times=1):
                result = trained_pipeline.translate_ranked_report(
                    example.question, db
                )
        finally:
            trained_pipeline.config.verify = saved
        scores = [r.stage1_score for r in result.translations]
        assert scores == sorted(scores, reverse=True)
        assert all(
            r.stage2_score == r.stage1_score for r in result.translations
        )
        assert "stage1-order" in result.report.fallbacks()

    def test_stage1_fault_falls_back_to_generation_order(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        with FAULTS.inject("stage1.rank", times=None):
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        assert result.translations
        assert "generation-order" in result.report.fallbacks()

    def test_ground_fault_skips_one_candidate_only(
        self, trained_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        with FAULTS.inject("values.ground_values", times=1):
            result = trained_pipeline.translate_ranked_report(
                example.question, db
            )
        assert result.translations
        assert result.report.skipped_candidates == 1

    def test_executor_fault_recorded_by_execution_match(self, world_db):
        query = parse_sql("SELECT name FROM country")
        report = TranslationReport(question="probe")
        with FAULTS.inject("executor.execute", times=1):
            hit = execution_match(query, query, world_db, report=report)
        assert hit is False
        assert "executor.execute" in [r.site for r in report.faults]

    def test_executor_fault_surfaces_in_eval_report(
        self, trained_pipeline, tiny_benchmark
    ):
        from repro.eval.evaluate import evaluate_metasql

        with FAULTS.inject("executor.execute", times=1):
            result = evaluate_metasql(
                trained_pipeline, tiny_benchmark.dev, limit=2
            )
        assert len(result.records) == 2
        # With the verify stage enabled, the first execute() call happens
        # while verifying candidates, so the injected fault is absorbed
        # there (fail-open); with it disabled, the EX metric absorbs it.
        counts = result.fault_counts()
        assert counts.get("execute", 0) + counts.get("verify", 0) >= 1
        sites = [
            fault.site
            for record in result.records
            if record.report is not None
            for fault in record.report.faults
        ]
        assert "executor.execute" in sites
        assert 0.0 < result.degraded_rate <= 1.0


# ----------------------------------------------------------------------
# Lifecycle errors and configuration aliasing.


class TestPipelineState:
    def test_untrained_translate_raises_state_error(self, world_db):
        from repro.models.registry import create_model

        pipe = MetaSQL(create_model("lgesql"))
        with pytest.raises(PipelineStateError, match="not trained"):
            pipe.translate_ranked("anything", world_db)

    def test_untrained_candidates_raises_state_error(self, world_db):
        from repro.models.registry import create_model

        pipe = MetaSQL(create_model("lgesql"))
        with pytest.raises(PipelineStateError, match="not trained"):
            pipe.candidates("anything", world_db)

    def test_state_error_is_still_a_runtime_error(self, world_db):
        from repro.models.registry import create_model

        pipe = MetaSQL(create_model("lgesql"))
        with pytest.raises(RuntimeError):
            pipe.translate_ranked("anything", world_db)


class TestConfigAliasing:
    def test_pipeline_does_not_mutate_shared_config(self):
        from repro.models.registry import create_model

        shared = MetaSQLConfig(phrase_supervision=False)
        pipe = MetaSQL(create_model("lgesql"), shared)
        # The ablation flag reaches the ranker without clobbering the
        # (possibly shared) Stage2Config in place.
        assert shared.stage2.phrase_supervision is True
        assert pipe.stage2.config.phrase_supervision is False

    def test_two_pipelines_sharing_a_stage2_config(self):
        from repro.models.registry import create_model

        stage2 = Stage2Config()
        ablated = MetaSQLConfig(phrase_supervision=False, stage2=stage2)
        full = MetaSQLConfig(phrase_supervision=True, stage2=stage2)
        pipe_ablated = MetaSQL(create_model("lgesql"), ablated)
        pipe_full = MetaSQL(create_model("lgesql"), full)
        assert pipe_ablated.stage2.config.phrase_supervision is False
        assert pipe_full.stage2.config.phrase_supervision is True
        assert stage2.phrase_supervision is True


# ----------------------------------------------------------------------
# Training-time fault isolation.


class TestTrainingIsolation:
    def test_training_survives_injected_example_faults(
        self, fitted_lgesql, tiny_benchmark
    ):
        config = MetaSQLConfig(
            ranker_train_questions=12,
            classifier=ClassifierConfig(epochs=4),
            stage1=Stage1Config(epochs=4),
            stage2=Stage2Config(epochs=3),
        )
        pipe = MetaSQL(fitted_lgesql, config)
        with FAULTS.inject("generator.generate", times=3):
            pipe.train(tiny_benchmark.train, fit_base_model=False)
        assert pipe._trained
        skipped = pipe.training_report.stage_faults("train")
        assert len(skipped) == 3
        # The degraded-trained pipeline still translates.
        example = tiny_benchmark.dev.examples[0]
        db = tiny_benchmark.dev.database(example.db_id)
        ranked = pipe.translate_ranked(example.question, db)
        assert isinstance(ranked, list) and ranked


# ----------------------------------------------------------------------
# Execution budget guard.


class TestExecutionBudget:
    def test_rows_limit_trips_on_cartesian_product(self):
        # Two unrelated tables (no FK): bare join is a cartesian product.
        schema = Schema(
            db_id="cartesian",
            tables=(
                Table("lhs", (Column("a", NUMBER),)),
                Table("rhs", (Column("b", NUMBER),)),
            ),
        )
        db = Database(schema)
        db.insert_many("lhs", [{"a": i} for i in range(6)])
        db.insert_many("rhs", [{"b": i} for i in range(6)])
        budget = ExecutionBudget(max_steps=None, max_rows=10)
        query = parse_sql("SELECT a FROM lhs, rhs")
        with pytest.raises(ExecutionBudgetError):
            execute(query, db, budget=budget)

    def test_generous_budget_matches_unbudgeted_result(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population > 100000 "
            "ORDER BY population DESC"
        )
        unbudgeted = execute(query, world_db)
        budgeted = execute(
            query, world_db, budget=ExecutionBudget(max_steps=100_000)
        )
        assert budgeted == unbudgeted

    def test_budget_is_scoped_to_the_call(self, world_db):
        query = parse_sql("SELECT name FROM country")
        with pytest.raises(ExecutionBudgetError):
            execute(query, world_db, budget=ExecutionBudget(max_steps=1))
        # The exhausted budget does not leak into the next call.
        assert execute(query, world_db)

    def test_subqueries_draw_from_the_same_budget(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE code IN "
            "(SELECT countrycode FROM countrylanguage)"
        )
        budget = ExecutionBudget(max_steps=100_000)
        execute(query, world_db, budget=budget)
        # The nested subquery executions charged the outer budget: more
        # steps than the outer row count alone.
        assert budget.steps > 10

    @settings(deadline=None, max_examples=40)
    @given(max_steps=st.integers(min_value=1, max_value=2000))
    def test_budget_guard_always_terminates(self, max_steps, world_db):
        """Any step budget either completes or raises — never hangs."""
        query = parse_sql(
            "SELECT name FROM country, countrylanguage "
            "WHERE population > 0 ORDER BY name"
        )
        budget = ExecutionBudget(max_steps=max_steps, max_rows=None)
        reference = execute(query, world_db)
        try:
            rows = execute(query, world_db, budget=budget)
        except ExecutionBudgetError:
            # Overshoot is bounded by the single largest batched charge.
            assert budget.steps <= max_steps + 200
        else:
            assert rows == reference
