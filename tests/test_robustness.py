"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest

from repro.core.metadata import QueryMetadata
from repro.core.values import ground_values
from repro.schema.database import Database
from repro.schema.executor import execute
from repro.schema.schema import NUMBER, Column, Schema, Table
from repro.sqlkit.errors import SqlError, SqlExecutionError
from repro.sqlkit.parser import parse_sql


@pytest.fixture()
def empty_db():
    schema = Schema(
        db_id="empty",
        tables=(Table("t", (Column("a"), Column("n", NUMBER))),),
    )
    return Database(schema)


class TestExecutorRobustness:
    def test_empty_table_queries(self, empty_db):
        assert execute(parse_sql("SELECT a FROM t"), empty_db) == []
        assert execute(parse_sql("SELECT count(*) FROM t"), empty_db) == [(0,)]
        assert execute(
            parse_sql("SELECT a FROM t ORDER BY n DESC LIMIT 3"), empty_db
        ) == []

    def test_unknown_column_raises_sql_error(self, world_db):
        with pytest.raises(SqlError):
            execute(parse_sql("SELECT bogus FROM country"), world_db)

    def test_unknown_table_raises_sql_error(self, world_db):
        with pytest.raises(SqlError):
            execute(parse_sql("SELECT a FROM bogus"), world_db)

    def test_aggregate_without_group_context(self, world_db):
        # HAVING-style aggregate in WHERE is invalid: surfaced as SqlError.
        with pytest.raises(SqlError):
            execute(
                parse_sql("SELECT name FROM country WHERE count(*) > 1"),
                world_db,
            )

    def test_division_by_zero_yields_null(self, world_db):
        rows = execute(
            parse_sql("SELECT population / 0 FROM country LIMIT 1"), world_db
        )
        assert rows == [(None,)]

    def test_mixed_type_comparison_does_not_crash(self, world_db):
        rows = execute(
            parse_sql("SELECT name FROM country WHERE population > 'abc'"),
            world_db,
        )
        assert rows == []


class TestModelRobustness:
    def test_gibberish_question_still_decodes(
        self, fitted_lgesql, tiny_benchmark
    ):
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate("qwxz blorp 77 zzz", db)
        assert isinstance(candidates, list)

    def test_empty_question(self, fitted_lgesql, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        candidates = fitted_lgesql.translate("", db)
        assert isinstance(candidates, list)

    def test_unknown_metadata_tags_relaxed(
        self, trained_pipeline, tiny_benchmark
    ):
        """A metadata condition whose tag-set was never observed should not
        crash decoding — the model relaxes to soft-tag matching."""
        db = tiny_benchmark.dev.database("pets")
        weird = QueryMetadata(
            tags=frozenset({"project", "union", "group", "having"}),
            rating=950,
        )
        candidates = trained_pipeline.model.translate(
            "students per major", db, metadata=weird
        )
        assert isinstance(candidates, list)

    def test_pipeline_on_gibberish(self, trained_pipeline, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        ranked = trained_pipeline.translate_ranked("zz qq pp 3", db)
        assert isinstance(ranked, list)


class TestGroundingRobustness:
    def test_grounding_idempotent(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE continent = 'value'"
        )
        question = "countries in Asia"
        once = ground_values(query, question, world_db)
        twice = ground_values(once, question, world_db)
        assert once == twice

    def test_grounding_without_any_evidence(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population > 'value'"
        )
        grounded = ground_values(query, "no numbers here", world_db)
        # Placeholder survives; executing it just returns no rows.
        rows = execute(grounded, world_db)
        assert rows == []
