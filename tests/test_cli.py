"""CLI entry-point tests (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table4", "table5", "table6", "table7", "table8", "table9",
            "fig6", "supplementary",
        }

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_runs_one_experiment(self, capsys):
        exit_code = main(
            ["table5", "--scale", "small", "--models", "lgesql",
             "--limit", "20"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "lgesql+metasql" in out

    def test_supplementary_via_cli(self, capsys):
        exit_code = main(
            ["supplementary", "--scale", "small", "--limit", "20"]
        )
        assert exit_code == 0
        assert "value grounding" in capsys.readouterr().out
