"""Negative-sample collection tests (Section III-B1)."""

import pytest

from repro.core.negatives import collect_negative_samples
from repro.sqlkit.compare import exact_match


@pytest.fixture(scope="module")
def meta_model(tiny_benchmark):
    from repro.models.registry import create_model

    model = create_model("lgesql")
    model.fit(tiny_benchmark.train, with_metadata=True)
    return model


class TestNegativeSamples:
    def test_negatives_collected(self, meta_model, tiny_benchmark):
        negatives = collect_negative_samples(
            meta_model, tiny_benchmark.train, max_examples=40
        )
        assert negatives

    def test_negatives_are_not_gold(self, meta_model, tiny_benchmark):
        negatives = collect_negative_samples(
            meta_model, tiny_benchmark.train, max_examples=40
        )
        for example, wrong_query in negatives:
            assert not exact_match(wrong_query, example.sql)

    def test_deterministic(self, meta_model, tiny_benchmark):
        from repro.sqlkit.printer import to_sql

        a = collect_negative_samples(
            meta_model, tiny_benchmark.train, max_examples=20, seed=5
        )
        b = collect_negative_samples(
            meta_model, tiny_benchmark.train, max_examples=20, seed=5
        )
        assert [(e.question, to_sql(q)) for e, q in a] == [
            (e.question, to_sql(q)) for e, q in b
        ]

    def test_cap_respected(self, meta_model, tiny_benchmark):
        negatives = collect_negative_samples(
            meta_model,
            tiny_benchmark.train,
            max_examples=10,
            per_example=1,
        )
        assert len(negatives) <= 10
