"""Pipeline persistence tests: save -> load -> identical translations,
plus the durability contract (checksums, typed corruption errors)."""

import json
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.persist import (
    CHECKPOINT_FILES,
    load_pipeline,
    save_pipeline,
    verify_checkpoint,
)
from repro.sqlkit.errors import (
    CheckpointCorrupt,
    CheckpointError,
    CheckpointVersionError,
    SqlError,
)
from repro.sqlkit.printer import to_sql


@pytest.fixture(scope="module")
def saved_dir(trained_pipeline, tmp_path_factory):
    directory = tmp_path_factory.mktemp("pipeline") / "ckpt"
    save_pipeline(trained_pipeline, directory)
    return directory


class TestPersistence:
    def test_files_written(self, saved_dir):
        for name in (
            "manifest.json", "model.json", "classifier.json",
            "composer.json", "weights.npz",
        ):
            assert (saved_dir / name).exists()

    def test_loaded_pipeline_translates_identically(
        self, saved_dir, trained_pipeline, tiny_benchmark
    ):
        loaded = load_pipeline(saved_dir)
        dev = tiny_benchmark.dev
        for example in dev.examples[:15]:
            db = dev.database(example.db_id)
            original = trained_pipeline.translate_ranked(example.question, db)
            restored = loaded.translate_ranked(example.question, db)
            assert [to_sql(r.query) for r in original] == [
                to_sql(r.query) for r in restored
            ]

    def test_loaded_classifier_predicts_identically(
        self, saved_dir, trained_pipeline, tiny_benchmark
    ):
        loaded = load_pipeline(saved_dir)
        db = tiny_benchmark.dev.database("pets")
        question = "How many students have a dog?"
        assert loaded.classifier.predict(
            question, db
        ) == trained_pipeline.classifier.predict(question, db)

    def test_version_check(self, saved_dir, tmp_path):
        copy = tmp_path / "bad"
        shutil.copytree(saved_dir, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["version"] = 999
        (copy / "manifest.json").write_text(json.dumps(manifest))
        # Typed error, still a ValueError for pre-taxonomy callers.
        with pytest.raises(ValueError, match="version"):
            load_pipeline(copy)
        with pytest.raises(CheckpointVersionError):
            load_pipeline(copy)

    def test_manifest_checksums_every_file(self, saved_dir):
        manifest = verify_checkpoint(saved_dir)
        assert set(manifest["files"]) == set(CHECKPOINT_FILES)
        for entry in manifest["files"].values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0


ALL_FILES = ("manifest.json",) + CHECKPOINT_FILES


class TestCheckpointCorruption:
    """Truncation, bit-flips and missing files raise typed errors —
    never a partial load."""

    @pytest.fixture()
    def corruptible(self, saved_dir, tmp_path):
        copy = tmp_path / "copy"
        shutil.copytree(saved_dir, copy)
        return copy

    @pytest.mark.parametrize("name", ALL_FILES)
    def test_truncated_file(self, corruptible, name):
        path = corruptible / name
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_pipeline(corruptible)

    @pytest.mark.parametrize("name", ALL_FILES)
    def test_bit_flipped_file(self, corruptible, name):
        path = corruptible / name
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_pipeline(corruptible)

    @pytest.mark.parametrize("name", ALL_FILES)
    def test_missing_file(self, corruptible, name):
        (corruptible / name).unlink()
        with pytest.raises(CheckpointError):
            load_pipeline(corruptible)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointCorrupt):
            load_pipeline(tmp_path / "never-saved")

    def test_corruption_errors_root_at_sql_error(self, corruptible):
        (corruptible / "weights.npz").unlink()
        with pytest.raises(SqlError):
            load_pipeline(corruptible)


class TestRoundTripProperty:
    """Hypothesis: a restored pipeline translates identically."""

    @pytest.fixture(scope="class")
    def loaded(self, saved_dir):
        return load_pipeline(saved_dir)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_translations_survive_round_trip(
        self, data, loaded, trained_pipeline, tiny_benchmark
    ):
        dev = tiny_benchmark.dev
        example = data.draw(st.sampled_from(dev.examples[:25]))
        suffix = data.draw(
            st.text(alphabet="abcdefgh o", max_size=12), label="suffix"
        )
        question = example.question + suffix
        db = dev.database(example.db_id)
        original = trained_pipeline.translate_ranked(question, db)
        restored = loaded.translate_ranked(question, db)
        assert [to_sql(r.query) for r in original] == [
            to_sql(r.query) for r in restored
        ]


class TestLLMPoolRoundTrip:
    """The FewShotLLM demonstration-pool path survives persistence."""

    @pytest.fixture(scope="class")
    def llm_pipeline(self, tiny_benchmark):
        from repro.core.classifier import ClassifierConfig
        from repro.core.pipeline import MetaSQL, MetaSQLConfig
        from repro.models.registry import create_model

        config = MetaSQLConfig(
            ranker_train_questions=40,
            classifier=ClassifierConfig(epochs=10),
        )
        pipe = MetaSQL(create_model("chatgpt"), config)
        pipe.train(tiny_benchmark.train)
        return pipe

    def test_llm_round_trip(self, llm_pipeline, tiny_benchmark, tmp_path):
        from repro.models.llm import FewShotLLM

        target = tmp_path / "llm-ckpt"
        save_pipeline(llm_pipeline, target)
        loaded = load_pipeline(target)
        assert isinstance(loaded.model, FewShotLLM)
        assert len(loaded.model._pool) == len(llm_pipeline.model._pool)
        dev = tiny_benchmark.dev
        for example in dev.examples[:8]:
            db = dev.database(example.db_id)
            original = llm_pipeline.translate_ranked(example.question, db)
            restored = loaded.translate_ranked(example.question, db)
            assert [to_sql(r.query) for r in original] == [
                to_sql(r.query) for r in restored
            ]
