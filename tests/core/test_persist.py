"""Pipeline persistence tests: save -> load -> identical translations."""

import pytest

from repro.core.persist import load_pipeline, save_pipeline
from repro.sqlkit.printer import to_sql


class TestPersistence:
    @pytest.fixture(scope="class")
    def saved_dir(self, trained_pipeline, tmp_path_factory):
        directory = tmp_path_factory.mktemp("pipeline")
        save_pipeline(trained_pipeline, directory)
        return directory

    def test_files_written(self, saved_dir):
        for name in (
            "manifest.json", "model.json", "classifier.json",
            "composer.json", "weights.npz",
        ):
            assert (saved_dir / name).exists()

    def test_loaded_pipeline_translates_identically(
        self, saved_dir, trained_pipeline, tiny_benchmark
    ):
        loaded = load_pipeline(saved_dir)
        dev = tiny_benchmark.dev
        for example in dev.examples[:15]:
            db = dev.database(example.db_id)
            original = trained_pipeline.translate_ranked(example.question, db)
            restored = loaded.translate_ranked(example.question, db)
            assert [to_sql(r.query) for r in original] == [
                to_sql(r.query) for r in restored
            ]

    def test_loaded_classifier_predicts_identically(
        self, saved_dir, trained_pipeline, tiny_benchmark
    ):
        loaded = load_pipeline(saved_dir)
        db = tiny_benchmark.dev.database("pets")
        question = "How many students have a dog?"
        assert loaded.classifier.predict(
            question, db
        ) == trained_pipeline.classifier.predict(question, db)

    def test_version_check(self, saved_dir, tmp_path):
        import json
        import shutil

        copy = tmp_path / "bad"
        shutil.copytree(saved_dir, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["version"] = 999
        (copy / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_pipeline(copy)
