"""First- and second-stage ranker tests."""

import numpy as np
import pytest

from repro.core.rank_stage1 import (
    DualTowerRanker,
    RankingTriple,
    Stage1Config,
    sql_surface,
)
from repro.core.rank_stage2 import (
    ListItem,
    MultiGrainedRanker,
    RankingList,
    Stage2Config,
)
from repro.sqlkit.parser import parse_sql


def _synthetic_triples(n: int = 120, seed: int = 0) -> list[RankingTriple]:
    """Paired texts whose overlap determines the target similarity."""
    rng = np.random.default_rng(seed)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
    triples = []
    for __ in range(n):
        size = int(rng.integers(2, 5))
        question_words = list(rng.choice(words, size=size, replace=False))
        if rng.random() < 0.5:
            sql_words = list(question_words)
            target = 1.0
        else:
            sql_words = list(rng.choice(words, size=size, replace=False))
            shared = len(set(sql_words) & set(question_words))
            target = shared / size
        triples.append(
            RankingTriple(
                question=" ".join(question_words),
                sql_text=" ".join(sql_words),
                target=target,
            )
        )
    return triples


class TestStage1:
    @pytest.fixture(scope="class")
    def ranker(self):
        config = Stage1Config(epochs=30, buckets=256, embed_dim=24)
        return DualTowerRanker(config).fit(_synthetic_triples())

    def test_requires_triples(self):
        with pytest.raises(ValueError):
            DualTowerRanker().fit([])

    def test_loss_decreases(self, ranker):
        losses = ranker.training_losses()
        assert losses[-1] < losses[0]

    def test_similarity_reflects_overlap(self, ranker):
        same = ranker.similarity("alpha beta gamma", "alpha beta gamma")
        different = ranker.similarity("alpha beta gamma", "zeta eta delta")
        assert same > different

    def test_rank_returns_topk(self, ranker):
        ranked = ranker.rank(
            "alpha beta", ["alpha beta", "eta zeta", "alpha eta"], top_k=2
        )
        assert len(ranked) == 2
        assert ranked[0][0] == 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DualTowerRanker().encode_question("x")

    def test_sql_surface_includes_description(self, world_db):
        query = parse_sql("SELECT name FROM country WHERE code = 'ABW'")
        surface = sql_surface(query, world_db.schema)
        assert "SELECT" in surface
        assert "find" in surface  # NL description appended


def _synthetic_lists(n: int = 60, seed: int = 1) -> list[RankingList]:
    """Lists where targets correlate with question/phrase word overlap."""
    rng = np.random.default_rng(seed)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    lists = []
    for __ in range(n):
        question_words = list(rng.choice(words, size=3, replace=False))
        question = " ".join(question_words)
        items = []
        for rank in range(4):
            keep = 3 - rank
            phrase_words = question_words[:keep] + list(
                rng.choice(words, size=3 - keep, replace=True)
            )
            items.append(
                ListItem(
                    surface=" ".join(phrase_words),
                    phrases=tuple(phrase_words),
                    target=float(10 - rank * 3),
                )
            )
        lists.append(RankingList(question=question, items=tuple(items)))
    return lists


class TestStage2:
    @pytest.fixture(scope="class")
    def ranker(self):
        return MultiGrainedRanker(Stage2Config(epochs=8)).fit(
            _synthetic_lists()
        )

    def test_requires_lists(self):
        with pytest.raises(ValueError):
            MultiGrainedRanker().fit([])

    def test_loss_decreases(self, ranker):
        losses = ranker.training_losses()
        assert losses[-1] < losses[0]

    def test_ranks_matching_candidate_first(self, ranker):
        ranked = ranker.rank(
            "alpha beta gamma",
            [
                ("zeta epsilon delta", ("zeta", "epsilon", "delta")),
                ("alpha beta gamma", ("alpha", "beta", "gamma")),
            ],
        )
        assert ranked[0][0] == 1

    def test_phrase_ablation_trains_coarse_only(self):
        config = Stage2Config(epochs=3, phrase_supervision=False)
        ranker = MultiGrainedRanker(config).fit(_synthetic_lists(n=20))
        assert ranker.training_losses()

    def test_score_is_finite(self, ranker):
        value = ranker.score("alpha", "beta", ("beta",))
        assert np.isfinite(value)
