"""Multi-label classifier and composition-sampler tests."""

import pytest

from repro.core.classifier import ClassifierConfig, MetadataClassifier
from repro.core.compose import ComposerConfig, MetadataComposer
from repro.core.metadata import extract_metadata


@pytest.fixture(scope="module")
def classifier(tiny_benchmark):
    return MetadataClassifier(ClassifierConfig(epochs=25)).fit(
        tiny_benchmark.train
    )


@pytest.fixture(scope="module")
def composer(tiny_benchmark):
    return MetadataComposer().fit(tiny_benchmark.train)


class TestClassifier:
    def test_label_vocabulary(self, classifier):
        labels = classifier.labels
        assert "where" in labels
        assert any(isinstance(l, tuple) and l[0] == "rating" for l in labels)

    def test_loss_decreases(self, classifier):
        losses = classifier.training_losses()
        assert losses[-1] < losses[0]

    def test_predict_returns_tags_and_ratings(
        self, classifier, tiny_benchmark
    ):
        db = tiny_benchmark.dev.database("pets")
        tags, ratings = classifier.predict(
            "How many students have a cat?", db
        )
        assert isinstance(tags, set)
        assert ratings  # never starves

    def test_lower_threshold_adds_labels(self, classifier, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        question = "List the last names of students"
        strict_tags, __ = classifier.predict(question, db, threshold=0.0)
        loose_tags, __ = classifier.predict(question, db, threshold=-40.0)
        assert strict_tags <= loose_tags
        assert len(loose_tags) > len(strict_tags)

    def test_label_coverage_on_dev(self, classifier, tiny_benchmark):
        """Most dev questions' gold tags are covered at threshold 0."""
        dev = tiny_benchmark.dev
        covered = 0
        total = 0
        for example in dev.examples[:80]:
            db = dev.database(example.db_id)
            gold = extract_metadata(example.sql)
            tags, __ = classifier.predict(example.question, db)
            covered += gold.tags <= (tags | {"project"})
            total += 1
        assert covered / total > 0.5

    def test_unfitted_raises(self, tiny_benchmark):
        db = tiny_benchmark.dev.database("pets")
        with pytest.raises(RuntimeError):
            MetadataClassifier().logits("anything", db)


class TestComposer:
    def test_observed_combinations_counted(self, composer):
        assert len(composer.observed_combinations) > 10

    def test_compose_subsets_of_predicted(self, composer):
        compositions = composer.compose(
            {"project", "where", "group"}, [200, 300]
        )
        assert compositions
        for metadata in compositions:
            assert metadata.tags <= {"project", "where", "group"}

    def test_compose_respects_rating_window(self, composer):
        config = ComposerConfig(rating_window=50)
        strict = MetadataComposer(config)
        strict._combos = composer._combos
        strict._tagsets = composer._tagsets
        for metadata in strict.compose({"project", "where"}, [200]):
            assert abs(metadata.rating - 200) <= 50

    def test_compose_caps_count(self, composer):
        compositions = composer.compose(
            set(composer.observed_combinations[0][0])
            | {"where", "group", "order", "join"},
            [100, 200, 300, 400],
        )
        assert len(compositions) <= composer.config.max_compositions

    def test_all_compositions_for_ablation(self, composer):
        everything = composer.all_compositions(limit=10)
        assert len(everything) == 10

    def test_compositions_unique(self, composer):
        compositions = composer.compose(
            {"project", "where", "order", "limit", "agg"}, [200]
        )
        keys = [(m.tags, m.rating) for m in compositions]
        assert len(keys) == len(set(keys))
