"""Value-grounding tests."""

from repro.core.values import ground_values
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql


class TestGrounding:
    def test_text_placeholder_filled_from_db(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE continent = 'value'"
        )
        grounded = ground_values(
            query, "Countries in North America please", world_db
        )
        assert grounded.where.predicates[0].right.value == "North America"

    def test_number_placeholder_filled_from_question(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population > 'value'"
        )
        grounded = ground_values(
            query, "countries with population above 50000", world_db
        )
        assert grounded.where.predicates[0].right.value == 50000

    def test_two_numbers_assigned_in_order(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population > 'value' "
            "AND percentage < 'value'"
        )
        grounded = ground_values(
            query,
            "population above 1000 and percentage below 55",
            world_db,
        )
        values = [p.right.value for p in grounded.where.predicates]
        assert set(values) == {1000, 55}

    def test_between_placeholders(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE population "
            "BETWEEN 'value' AND 'value'"
        )
        grounded = ground_values(
            query, "population between 100 and 900", world_db
        )
        predicate = grounded.where.predicates[0]
        assert {predicate.right.value, predicate.right2.value} == {100, 900}

    def test_nested_subquery_grounded(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE code IN "
            "(SELECT countrycode FROM countrylanguage "
            "WHERE language = 'value')"
        )
        grounded = ground_values(
            query, "countries where Dutch is spoken", world_db
        )
        inner = grounded.where.predicates[0].right
        assert inner.where.predicates[0].right.value == "Dutch"

    def test_real_values_untouched(self, world_db):
        query = parse_sql("SELECT name FROM country WHERE code = 'ABW'")
        grounded = ground_values(query, "anything", world_db)
        assert to_sql(grounded) == to_sql(query)

    def test_unmatchable_placeholder_left_alone(self, world_db):
        query = parse_sql("SELECT name FROM country WHERE name = 'value'")
        grounded = ground_values(
            query, "question mentioning nothing in the db", world_db
        )
        assert grounded.where.predicates[0].right.value == "value"

    def test_like_placeholder(self, world_db):
        query = parse_sql(
            "SELECT name FROM country WHERE name LIKE 'value'"
        )
        grounded = ground_values(
            query, "names that contain Aruba", world_db
        )
        assert "%" in str(grounded.where.predicates[0].right.value)
