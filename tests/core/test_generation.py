"""Candidate-generation tests (conditioned decoding + value grounding)."""

import pytest

from repro.core.generation import CandidateGenerator, GeneratorConfig
from repro.core.metadata import QueryMetadata, extract_metadata
from repro.core.resilience import TranslationReport
from repro.models.base import Candidate
from repro.obs.metrics import MetricsRegistry, registry_scope
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql


@pytest.fixture(scope="module")
def meta_model(tiny_benchmark):
    from repro.models.registry import create_model

    model = create_model("lgesql")
    model.fit(tiny_benchmark.train, with_metadata=True)
    return model


@pytest.fixture()
def example(tiny_benchmark):
    return tiny_benchmark.dev.examples[0]


class TestGenerate:
    def test_one_beam_per_condition(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(
            meta_model,
            GeneratorConfig(
                beam_per_condition=1, include_unconditioned=False
            ),
        )
        db = tiny_benchmark.dev.database(example.db_id)
        gold_meta = extract_metadata(example.sql)
        simple = QueryMetadata(tags=frozenset({"project"}), rating=100)
        candidates = generator.generate(
            example.question, db, [gold_meta, simple]
        )
        conditions = {c.metadata for c in candidates}
        assert gold_meta in conditions or simple in conditions

    def test_max_candidates_cap(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(
            meta_model, GeneratorConfig(max_candidates=3)
        )
        db = tiny_benchmark.dev.database(example.db_id)
        compositions = [
            QueryMetadata(tags=frozenset({"project"}), rating=100),
            QueryMetadata(tags=frozenset({"project", "where"}), rating=200),
            QueryMetadata(tags=frozenset({"project", "order", "limit"}), rating=175),
        ]
        candidates = generator.generate(example.question, db, compositions)
        assert len(candidates) <= 3

    def test_unconditioned_fallback(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(
            meta_model, GeneratorConfig(include_unconditioned=True)
        )
        db = tiny_benchmark.dev.database(example.db_id)
        candidates = generator.generate(example.question, db, [])
        assert candidates
        assert all(c.metadata is None for c in candidates)

    def test_no_unconditioned_when_disabled(
        self, meta_model, tiny_benchmark, example
    ):
        generator = CandidateGenerator(
            meta_model, GeneratorConfig(include_unconditioned=False)
        )
        db = tiny_benchmark.dev.database(example.db_id)
        assert generator.generate(example.question, db, []) == []

    def test_deduplication(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(meta_model, GeneratorConfig())
        db = tiny_benchmark.dev.database(example.db_id)
        same = QueryMetadata(tags=frozenset({"project"}), rating=100)
        candidates = generator.generate(
            example.question, db, [same, same, same]
        )
        texts = [to_sql(c.query) for c in candidates]
        assert len(texts) == len(set(texts))

    def test_grounding_toggle(self, meta_model, tiny_benchmark):
        dev = tiny_benchmark.dev
        # Find an example whose raw decode emits a placeholder.
        for example in dev.examples:
            db = dev.database(example.db_id)
            raw = CandidateGenerator(
                meta_model,
                GeneratorConfig(ground_placeholder_values=False),
            ).generate(example.question, db, [])
            if any("'value'" in to_sql(c.query) for c in raw):
                break
        else:
            pytest.skip("no placeholder decode found")
        grounded = CandidateGenerator(
            meta_model, GeneratorConfig(ground_placeholder_values=True)
        ).generate(example.question, db, [])
        raw_text = " ".join(to_sql(c.query) for c in raw)
        grounded_text = " ".join(to_sql(c.query) for c in grounded)
        assert raw_text.count("'value'") >= grounded_text.count("'value'")


class _FixedModel:
    """Stub model decoding a fixed SQL list regardless of conditioning."""

    name = "fixed"

    def __init__(self, sqls):
        self.sqls = sqls

    def translate(self, question, db, metadata=None, beam_size=5):
        return [
            Candidate(query=parse_sql(sql), score=-float(i))
            for i, sql in enumerate(self.sqls[:beam_size])
        ]


class TestLintGate:
    """The semantic-lint gate between dedup and collection."""

    VALID = "SELECT name FROM country"
    INVALID = "SELECT flavour FROM country"  # SQL002 unknown column
    SUSPECT = "SELECT name FROM country LIMIT 3"  # SQL101 warning

    def _generate(self, db, sqls, config=None, report=None):
        generator = CandidateGenerator(
            _FixedModel(sqls),
            config
            or GeneratorConfig(
                include_unconditioned=True, ground_placeholder_values=False
            ),
        )
        return generator.generate("q", db, [], report=report)

    def test_invalid_candidate_pruned(self, world_db):
        report = TranslationReport()
        candidates = self._generate(
            world_db, [self.INVALID, self.VALID], report=report
        )
        assert [to_sql(c.query) for c in candidates] == [self.VALID]
        assert report.lint_rejected == 1
        assert report.lint_codes == {"SQL002": 1}
        assert not report.degraded  # pruning is not a fault
        assert report.faults == []

    def test_warnings_annotate_surviving_candidate(self, world_db):
        candidates = self._generate(world_db, [self.SUSPECT])
        assert len(candidates) == 1
        assert [d.code for d in candidates[0].diagnostics] == ["SQL101"]

    def test_prune_disabled_keeps_invalid(self, world_db):
        config = GeneratorConfig(
            include_unconditioned=True,
            ground_placeholder_values=False,
            lint_prune_errors=False,
        )
        candidates = self._generate(
            world_db, [self.INVALID, self.VALID], config=config
        )
        assert len(candidates) == 2
        assert any(
            d.code == "SQL002" for d in candidates[0].diagnostics
        )

    def test_lint_disabled_is_passthrough(self, world_db):
        config = GeneratorConfig(
            include_unconditioned=True,
            ground_placeholder_values=False,
            lint_candidates=False,
        )
        report = TranslationReport()
        candidates = self._generate(
            world_db, [self.INVALID, self.VALID], config=config, report=report
        )
        assert len(candidates) == 2
        assert report.lint_rejected == 0
        assert all(c.diagnostics == () for c in candidates)

    def test_rejections_counted_in_metrics(self, world_db):
        registry = MetricsRegistry()
        with registry_scope(registry):
            self._generate(world_db, [self.INVALID, self.VALID])
        counter = registry.counter(
            "metasql_candidates_lint_rejected_total", labelnames=("code",)
        )
        assert counter.labels(code="SQL002").value == 1.0

    def test_analyzer_crash_fails_open(self, world_db, monkeypatch):
        from repro.sqlkit.analyze import SemanticAnalyzer

        def boom(self, query):
            raise RuntimeError("analyzer exploded")

        monkeypatch.setattr(SemanticAnalyzer, "analyze", boom)
        report = TranslationReport()
        candidates = self._generate(
            world_db, [self.INVALID, self.VALID], report=report
        )
        # Gate fails open: both candidates survive, the crash is recorded.
        assert len(candidates) == 2
        assert report.lint_rejected == 0
        stages = [fault.stage for fault in report.faults]
        assert stages == ["lint", "lint"]
        assert all(f.fallback == "keep" for f in report.faults)

    def test_report_round_trip_preserves_lint_counts(self, world_db):
        report = TranslationReport()
        self._generate(world_db, [self.INVALID, self.VALID], report=report)
        restored = TranslationReport.from_dict(report.as_dict())
        assert restored.lint_rejected == 1
        assert restored.lint_codes == {"SQL002": 1}
