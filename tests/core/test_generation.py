"""Candidate-generation tests (conditioned decoding + value grounding)."""

import pytest

from repro.core.generation import CandidateGenerator, GeneratorConfig
from repro.core.metadata import QueryMetadata, extract_metadata
from repro.sqlkit.printer import to_sql


@pytest.fixture(scope="module")
def meta_model(tiny_benchmark):
    from repro.models.registry import create_model

    model = create_model("lgesql")
    model.fit(tiny_benchmark.train, with_metadata=True)
    return model


@pytest.fixture()
def example(tiny_benchmark):
    return tiny_benchmark.dev.examples[0]


class TestGenerate:
    def test_one_beam_per_condition(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(
            meta_model,
            GeneratorConfig(
                beam_per_condition=1, include_unconditioned=False
            ),
        )
        db = tiny_benchmark.dev.database(example.db_id)
        gold_meta = extract_metadata(example.sql)
        simple = QueryMetadata(tags=frozenset({"project"}), rating=100)
        candidates = generator.generate(
            example.question, db, [gold_meta, simple]
        )
        conditions = {c.metadata for c in candidates}
        assert gold_meta in conditions or simple in conditions

    def test_max_candidates_cap(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(
            meta_model, GeneratorConfig(max_candidates=3)
        )
        db = tiny_benchmark.dev.database(example.db_id)
        compositions = [
            QueryMetadata(tags=frozenset({"project"}), rating=100),
            QueryMetadata(tags=frozenset({"project", "where"}), rating=200),
            QueryMetadata(tags=frozenset({"project", "order", "limit"}), rating=175),
        ]
        candidates = generator.generate(example.question, db, compositions)
        assert len(candidates) <= 3

    def test_unconditioned_fallback(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(
            meta_model, GeneratorConfig(include_unconditioned=True)
        )
        db = tiny_benchmark.dev.database(example.db_id)
        candidates = generator.generate(example.question, db, [])
        assert candidates
        assert all(c.metadata is None for c in candidates)

    def test_no_unconditioned_when_disabled(
        self, meta_model, tiny_benchmark, example
    ):
        generator = CandidateGenerator(
            meta_model, GeneratorConfig(include_unconditioned=False)
        )
        db = tiny_benchmark.dev.database(example.db_id)
        assert generator.generate(example.question, db, []) == []

    def test_deduplication(self, meta_model, tiny_benchmark, example):
        generator = CandidateGenerator(meta_model, GeneratorConfig())
        db = tiny_benchmark.dev.database(example.db_id)
        same = QueryMetadata(tags=frozenset({"project"}), rating=100)
        candidates = generator.generate(
            example.question, db, [same, same, same]
        )
        texts = [to_sql(c.query) for c in candidates]
        assert len(texts) == len(set(texts))

    def test_grounding_toggle(self, meta_model, tiny_benchmark):
        dev = tiny_benchmark.dev
        # Find an example whose raw decode emits a placeholder.
        for example in dev.examples:
            db = dev.database(example.db_id)
            raw = CandidateGenerator(
                meta_model,
                GeneratorConfig(ground_placeholder_values=False),
            ).generate(example.question, db, [])
            if any("'value'" in to_sql(c.query) for c in raw):
                break
        else:
            pytest.skip("no placeholder decode found")
        grounded = CandidateGenerator(
            meta_model, GeneratorConfig(ground_placeholder_values=True)
        ).generate(example.question, db, [])
        raw_text = " ".join(to_sql(c.query) for c in raw)
        grounded_text = " ".join(to_sql(c.query) for c in grounded)
        assert raw_text.count("'value'") >= grounded_text.count("'value'")
