"""MetaSQL pipeline integration tests (on the shared trained pipeline)."""

import pytest

from repro.core.generation import CandidateGenerator, GeneratorConfig
from repro.core.metadata import QueryMetadata, extract_metadata
from repro.core.pipeline import MetaSQL, MetaSQLConfig
from repro.models.registry import create_model
from repro.sqlkit.compare import exact_match
from repro.sqlkit.parser import parse_sql
from repro.sqlkit.printer import to_sql


class TestGeneration:
    def test_conditioned_candidates_deduped(
        self, trained_pipeline, tiny_benchmark
    ):
        dev = tiny_benchmark.dev
        example = dev.examples[0]
        db = dev.database(example.db_id)
        candidates = trained_pipeline.candidates(example.question, db)
        texts = [to_sql(c.query) for c in candidates]
        assert len(texts) == len(set(texts))
        assert len(candidates) <= trained_pipeline.config.generator.max_candidates

    def test_conditioning_produces_structural_diversity(
        self, trained_pipeline, tiny_benchmark
    ):
        """Fig. 4: different compositions yield different structures."""
        from repro.models.sketch import extract_sketch

        dev = tiny_benchmark.dev
        diverse = 0
        checked = 0
        for example in dev.examples[:20]:
            db = dev.database(example.db_id)
            candidates = trained_pipeline.candidates(example.question, db)
            shapes = {extract_sketch(c.query) for c in candidates}
            checked += 1
            if len(shapes) > 1:
                diverse += 1
        assert diverse / checked > 0.5

    def test_metadata_attached_to_candidates(
        self, trained_pipeline, tiny_benchmark
    ):
        dev = tiny_benchmark.dev
        example = dev.examples[1]
        db = dev.database(example.db_id)
        gold_meta = extract_metadata(example.sql)
        candidates = trained_pipeline.candidates(
            example.question, db, compositions=[gold_meta]
        )
        assert any(c.metadata == gold_meta for c in candidates)

    def test_placeholders_grounded(self, trained_pipeline, tiny_benchmark):
        """LGESQL emits 'value'; the pipeline grounds values before ranking."""
        dev = tiny_benchmark.dev
        grounded_literals = 0
        for example in dev.examples[:30]:
            db = dev.database(example.db_id)
            for candidate in trained_pipeline.candidates(example.question, db):
                text = to_sql(candidate.query)
                if "'" in text and "'value'" not in text:
                    grounded_literals += 1
                    break
        assert grounded_literals > 0


class TestTranslate:
    def test_untrained_pipeline_raises(self, tiny_benchmark):
        pipeline = MetaSQL(create_model("bridge"))
        db = tiny_benchmark.dev.database("pets")
        with pytest.raises(RuntimeError):
            pipeline.translate_ranked("anything", db)

    def test_ranked_output_sorted(self, trained_pipeline, tiny_benchmark):
        dev = tiny_benchmark.dev
        example = dev.examples[2]
        db = dev.database(example.db_id)
        ranked = trained_pipeline.translate_ranked(example.question, db)
        scores = [r.stage2_score for r in ranked]
        assert scores == sorted(scores, reverse=True)
        assert len(ranked) <= trained_pipeline.config.first_stage_top

    def test_translate_returns_query_or_none(
        self, trained_pipeline, tiny_benchmark
    ):
        db = tiny_benchmark.dev.database("pets")
        query = trained_pipeline.translate("How many students are there?", db)
        assert query is not None
        assert exact_match(query, parse_sql("SELECT count(*) FROM student"))

    def test_improves_over_base_model(self, trained_pipeline, tiny_benchmark):
        """The headline claim: MetaSQL EM >= base EM - small tolerance.

        On the tiny fixture the margin is noisy, so we assert the pipeline
        is at worst slightly below and that its ranked lists contain the
        gold more often than the base top-1.
        """
        dev = tiny_benchmark.dev
        model = trained_pipeline.model
        base_hits = 0
        meta_hits = 0
        list_hits = 0
        examples = dev.examples[:60]
        for example in examples:
            db = dev.database(example.db_id)
            base = model.translate(example.question, db, beam_size=5)
            if base and exact_match(base[0].query, example.sql):
                base_hits += 1
            ranked = trained_pipeline.translate_ranked(example.question, db)
            if ranked and exact_match(ranked[0].query, example.sql):
                meta_hits += 1
            if any(exact_match(r.query, example.sql) for r in ranked):
                list_hits += 1
        assert list_hits >= base_hits
        assert meta_hits >= base_hits - 6


class TestAblationConfigs:
    def test_no_classifier_uses_all_compositions(
        self, trained_pipeline, tiny_benchmark
    ):
        config = MetaSQLConfig(use_classifier=False)
        pipeline = MetaSQL(trained_pipeline.model, config)
        pipeline.classifier = trained_pipeline.classifier
        pipeline.composer = trained_pipeline.composer
        db = tiny_benchmark.dev.database("pets")
        compositions = pipeline._compositions_for("How many students?", db)
        assert len(compositions) > pipeline.config.composer.max_compositions

    def test_no_stage2_ranks_by_stage1(self, trained_pipeline, tiny_benchmark):
        config = MetaSQLConfig(use_stage2=False)
        pipeline = MetaSQL(trained_pipeline.model, config)
        pipeline.classifier = trained_pipeline.classifier
        pipeline.composer = trained_pipeline.composer
        pipeline.stage1 = trained_pipeline.stage1
        pipeline._trained = True
        dev = tiny_benchmark.dev
        example = dev.examples[0]
        db = dev.database(example.db_id)
        ranked = pipeline.translate_ranked(example.question, db)
        assert ranked
        for item in ranked:
            assert item.stage1_score == item.stage2_score
