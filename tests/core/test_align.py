"""Alignment feature tests — the swapped-aggregate case in particular."""

import numpy as np

from repro.core.align import (
    PHRASE_FEATURE_DIM,
    SENTENCE_FEATURE_DIM,
    canonicalize,
    content_words,
    phrase_features,
    sentence_features,
)


class TestCanonicalization:
    def test_synonyms_map_to_classes(self):
        assert canonicalize(["lowest", "smallest", "minimum"]) == [
            "MIN", "MIN", "MIN",
        ]

    def test_unknown_tokens_pass_through(self):
        assert canonicalize(["killed"]) == ["killed"]

    def test_content_words_drop_fillers(self):
        words = content_words("find the number of records for students")
        assert "find" not in words
        assert "students" in words


class TestPhraseFeatures:
    def test_dimension(self):
        assert phrase_features("a question", "a phrase").shape == (
            PHRASE_FEATURE_DIM,
        )

    def test_matching_phrase_scores_high_overlap(self):
        question = "Tell me the lowest killed for casualty records."
        features = phrase_features(question, "the minimum killed")
        assert features[0] == 1.0  # full canonical overlap

    def test_swapped_aggregate_detected_by_adjacency(self):
        """min(killed) vs min(injured) under 'lowest killed ... highest injured'."""
        question = "Tell me the lowest killed and the highest injured."
        right = phrase_features(question, "the minimum killed")
        wrong = phrase_features(question, "the minimum injured")
        assert right[1] > wrong[1]  # adjacency separates them

    def test_number_mismatch_detected(self):
        question = "records with killed above 300"
        good = phrase_features(question, "whose killed is greater than 300")
        bad = phrase_features(question, "whose killed is greater than 999")
        assert good[3] > bad[3]

    def test_class_mismatch_detected(self):
        question = "records with killed above 300"
        good = phrase_features(question, "whose killed is greater than 300")
        bad = phrase_features(question, "whose killed is less than 300")
        assert good[4] > bad[4]


class TestSentenceFeatures:
    def test_dimension(self):
        features = sentence_features("q", "surface", ("p1", "p2"))
        assert features.shape == (SENTENCE_FEATURE_DIM,)

    def test_missing_clause_lowers_question_coverage(self):
        question = "last names of students whose major is Biology"
        full = sentence_features(
            question,
            "SELECT lname FROM student WHERE major = 'Biology'",
            ("find last name", "the student", "whose major is Biology"),
        )
        partial = sentence_features(
            question,
            "SELECT lname FROM student",
            ("find last name", "the student"),
        )
        assert full[0] > partial[0]

    def test_hallucinated_clause_lowers_candidate_coverage(self):
        question = "last names of students"
        clean = sentence_features(
            question,
            "SELECT lname FROM student",
            ("find last name", "the student"),
        )
        noisy = sentence_features(
            question,
            "SELECT lname FROM student WHERE age > 20",
            ("find last name", "the student", "whose age is greater than 20"),
        )
        assert clean[1] > noisy[1]
