"""Clause-wise similarity-score tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import similarity_score, similarity_unit
from repro.data.domains import SPIDER_DOMAINS, build_domain
from repro.data.generator import QuerySampler
from repro.sqlkit.parser import parse_sql


def score(a: str, b: str) -> float:
    return similarity_score(parse_sql(a), parse_sql(b))


class TestScores:
    def test_gold_scores_ten(self):
        sql = "SELECT a FROM t WHERE b = 1"
        assert score(sql, sql) == 10.0

    def test_em_equivalent_scores_ten(self):
        assert score(
            "SELECT a, b FROM t WHERE c = 1 AND d = 2",
            "SELECT b, a FROM t WHERE d = 9 AND c = 3",
        ) == 10.0

    def test_one_clause_off_penalised(self):
        value = score(
            "SELECT a FROM t WHERE b = 1", "SELECT a FROM t WHERE b > 1"
        )
        assert 6.0 <= value < 10.0

    def test_more_differences_score_lower(self):
        near = score(
            "SELECT a FROM t WHERE b = 1", "SELECT a FROM t WHERE b > 1"
        )
        far = score(
            "SELECT a FROM t WHERE b = 1",
            "SELECT z FROM u WHERE y > 1 GROUP BY z",
        )
        assert far < near

    def test_missing_where(self):
        assert score("SELECT a FROM t", "SELECT a FROM t WHERE b = 1") < 10.0

    def test_setop_vs_plain(self):
        value = score(
            "SELECT a FROM t",
            "SELECT a FROM t EXCEPT SELECT a FROM t WHERE b = 1",
        )
        assert value <= 7.5

    def test_limit_mismatch_small_penalty(self):
        value = score(
            "SELECT a FROM t ORDER BY b LIMIT 1",
            "SELECT a FROM t ORDER BY b LIMIT 3",
        )
        assert value >= 9.0

    def test_floor_at_zero(self):
        value = score(
            "SELECT a FROM t",
            "SELECT x, count(*) FROM u JOIN v ON u.id = v.uid "
            "WHERE q = 1 AND w = 2 GROUP BY x HAVING count(*) > 2 "
            "ORDER BY count(*) DESC LIMIT 5",
        )
        assert value >= 0.0


class TestUnitScale:
    def test_unit_is_tenth(self):
        a = "SELECT a FROM t WHERE b = 1"
        b = "SELECT a FROM t WHERE b > 1"
        assert similarity_unit(
            parse_sql(a), parse_sql(b)
        ) == pytest.approx(score(a, b) / 10.0)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_bounded_and_reflexive(self, seed):
        db = build_domain(SPIDER_DOMAINS["pets"], seed=2)
        sampler = QuerySampler(db, np.random.default_rng(seed))
        a, b = sampler.sample(), sampler.sample()
        assert similarity_score(a, a) == 10.0
        value = similarity_score(a, b)
        assert 0.0 <= value <= 10.0
