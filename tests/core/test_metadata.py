"""Query-metadata tests (Section III-A)."""

from repro.core.metadata import (
    CORRECT,
    INCORRECT,
    QueryMetadata,
    augment_question,
    extract_metadata,
)
from repro.sqlkit.parser import parse_sql


class TestExtraction:
    def test_paper_fig1_example(self):
        query = parse_sql(
            "SELECT countrycode FROM cl EXCEPT "
            "SELECT countrycode FROM cl WHERE language = 'English'"
        )
        metadata = extract_metadata(query)
        assert "project" in metadata.tags
        assert "except" in metadata.tags
        assert metadata.correctness == CORRECT
        assert metadata.rating >= 400

    def test_where_tags(self):
        metadata = extract_metadata(
            parse_sql("SELECT a FROM t WHERE b = 'x'")
        )
        assert metadata.tags == frozenset({"project", "where"})
        assert metadata.rating == 200

    def test_group_join_tags(self):
        metadata = extract_metadata(
            parse_sql(
                "SELECT u.a, count(*) FROM t JOIN u ON t.id = u.tid "
                "GROUP BY u.a"
            )
        )
        assert {"group", "join", "agg"} <= metadata.tags

    def test_correctness_override(self):
        query = parse_sql("SELECT a FROM t")
        metadata = extract_metadata(query, correctness=INCORRECT)
        assert metadata.correctness == INCORRECT


class TestFlattening:
    def test_flatten_format(self):
        metadata = QueryMetadata(
            tags=frozenset({"project", "except"}), rating=400
        )
        flat = metadata.flatten()
        assert flat == "correct | rating : 400 | tags : except, project"

    def test_augment_question_prefix(self):
        metadata = QueryMetadata(tags=frozenset({"project"}), rating=100)
        text = augment_question("How many?", metadata)
        assert text.endswith("| How many?")
        assert text.startswith("correct | rating : 100")

    def test_with_correctness_immutably(self):
        metadata = QueryMetadata(tags=frozenset({"project"}), rating=100)
        flipped = metadata.with_correctness(INCORRECT)
        assert metadata.correctness == CORRECT
        assert flipped.correctness == INCORRECT

    def test_with_rating(self):
        metadata = QueryMetadata(tags=frozenset({"project"}), rating=100)
        assert metadata.with_rating(250).rating == 250

    def test_hashable(self):
        a = QueryMetadata(tags=frozenset({"project"}), rating=100)
        b = QueryMetadata(tags=frozenset({"project"}), rating=100)
        assert len({a, b}) == 1
