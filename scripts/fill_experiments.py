#!/usr/bin/env python
"""Fill EXPERIMENTS.md placeholders from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only`` so the recorded document
always matches the latest measured tables.
"""

from __future__ import annotations

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

PLACEHOLDERS = {
    "PLACEHOLDER_TABLE4": "table4.txt",
    "PLACEHOLDER_TABLE5": "table5.txt",
    "PLACEHOLDER_TABLE6": "table6.txt",
    "PLACEHOLDER_TABLE7": "table7.txt",
    "PLACEHOLDER_TABLE8": "table8.txt",
    "PLACEHOLDER_TABLE9": "table9.txt",
    "PLACEHOLDER_FIG6": "fig6.txt",
    "PLACEHOLDER_SUPPLEMENTARY": "supplementary.txt",
}


def main() -> None:
    experiments = ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    for placeholder, filename in PLACEHOLDERS.items():
        result_file = RESULTS / filename
        if result_file.exists():
            block = "```\n" + result_file.read_text().strip() + "\n```"
        else:
            block = f"*(missing: run `pytest benchmarks/` to produce {filename})*"
        text = text.replace(placeholder, block)
    experiments.write_text(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
